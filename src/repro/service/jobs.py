"""Service configuration, the job model, and the bounded job store.

A :class:`Job` is one admitted unit of work.  ``kind="synthesize"``
jobs wrap a single content-addressed solve (the same payload shape the
explorer ships to pool workers); ``kind="sweep"`` jobs aggregate a set
of child synthesize jobs and complete when the last child does.
Coalescing happens at the job layer: the service keeps one Job per
in-flight content hash, and every identical request — standalone or a
sweep point — attaches to it instead of solving again.

Jobs are created and completed on the event-loop thread, so their
state transitions need no locking; cross-thread readers only ever see
a consistent (status, record) pair because ``finish()`` assigns the
record before setting the done event.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import asyncio

from repro.explore.worker import run_job

#: Terminal record statuses a finished job can carry.
TERMINAL_STATUSES = ("ok", "degraded", "error", "budget_exhausted")


@dataclass(frozen=True)
class ShardIdentity:
    """This server's seat on the cluster's consistent-hash ring.

    Set by ``repro serve --shard-name/--shard-index/--shard-count``
    (the cluster supervisor passes all three).  A shard is *ready*
    only when its seat is coherent — the ring can only have assigned
    it a key range if its index actually falls inside the fleet —
    which is what ``/healthz`` readiness checks in shard mode.
    """

    name: str
    index: int
    count: int

    def valid(self) -> bool:
        return bool(self.name) and 0 <= self.index < self.count

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "index": self.index,
                "count": self.count}


@dataclass(frozen=True)
class ServiceConfig:
    """Frozen knobs for one server instance.

    ``pool_mode`` selects how solves run: ``"process"`` (default) forks
    a warm worker pool for true parallelism; ``"thread"`` keeps workers
    in-process (tests, and platforms without fork).  ``job_runner`` is
    the function the pool executes per job — injectable so tests can
    substitute gated or canned runners without patching modules; in
    process mode it must be picklable (module-level).
    """

    host: str = "127.0.0.1"
    port: int = 8764
    workers: int = 2
    max_queue: int = 64
    cache_path: Optional[str] = None
    cache_sync: bool = True
    #: JSONL path for the shared pin-oracle store (None = in-memory).
    #: The store is activated process-wide before the pool forks, so
    #: workers inherit it warm and ship their deltas back.
    oracle_path: Optional[str] = None
    default_timeout_ms: float = 30000.0
    pool_mode: str = "process"
    job_runner: Callable[[Dict[str, Any]], Dict[str, Any]] = run_job
    max_body_bytes: int = 8 << 20
    retained_jobs: int = 1024
    #: Cluster seat (None = standalone).  ``cache_path`` may name the
    #: cluster's shared cache server as ``remote://host:port``.
    shard: Optional[ShardIdentity] = None


_JOB_IDS = itertools.count(1)


@dataclass
class Job:
    """One admitted unit of work and its completion event."""

    key: str
    params: Dict[str, Any]
    payload: Dict[str, Any] = field(default_factory=dict)
    kind: str = "synthesize"
    id: str = field(default_factory=lambda: f"j{next(_JOB_IDS):08d}")
    status: str = "queued"          # queued -> running -> <terminal>
    record: Optional[Dict[str, Any]] = None
    cached: bool = False
    coalesced: int = 0              # followers that attached to this job
    children: List["Job"] = field(default_factory=list)
    _done: asyncio.Event = field(default_factory=asyncio.Event,
                                 repr=False)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done.is_set()

    def finish(self, record: Dict[str, Any]) -> None:
        self.record = record
        self.status = record.get("status", "error")
        self._done.set()

    async def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Await completion; False if ``timeout_s`` elapsed first."""
        if timeout_s is None:
            await self._done.wait()
            return True
        try:
            await asyncio.wait_for(self._done.wait(), timeout_s)
            return True
        except asyncio.TimeoutError:
            return False


class JobStore:
    """Bounded id -> Job map; evicts oldest *finished* jobs first."""

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = max(1, int(capacity))
        self._jobs: Dict[str, Job] = {}

    def add(self, job: Job) -> None:
        self._jobs[job.id] = job
        if len(self._jobs) > self.capacity:
            for jid in [j.id for j in self._jobs.values() if j.done]:
                if len(self._jobs) <= self.capacity:
                    break
                del self._jobs[jid]

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def __len__(self) -> int:
        return len(self._jobs)
