"""Asyncio HTTP/1.1 front end for the synthesis service.

Stdlib-only: a small hand-rolled HTTP layer over ``asyncio`` streams
(request line + headers + ``Content-Length`` body; keep-alive until
the client closes or says ``Connection: close``), dispatching into
:func:`repro.service.app.handle_api`.  Three entry points share it:

* :func:`serve` — the blocking ``repro serve`` CLI path, with
  SIGTERM/SIGINT wired to a graceful drain (stop accepting, finish
  every in-flight job, shut the warm pool down, exit 0);
* :class:`ServiceServer` — the async core (start / shutdown) for
  embedding in an existing loop;
* :class:`ThreadedServer` — a background-thread harness used by the
  test suite and the service benchmark (context manager; ``port=0``
  picks a free port, readable as ``.port`` once started).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ReproError
from repro.obs.prometheus import CONTENT_TYPE as PROM_CONTENT_TYPE
from repro.service.app import SynthesisService, handle_api
from repro.service.jobs import ServiceConfig

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


# ---------------------------------------------------------------------
async def _read_request(reader: asyncio.StreamReader, max_body: int
                        ) -> Optional[Tuple[str, str, Dict[str, str],
                                            bytes]]:
    """Parse one request; None on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise _HttpError(400, "request line too long") from None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            return None
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise _HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _HttpError(400, "bad Content-Length") from None
    if length > max_body:
        raise _HttpError(413, f"body exceeds {max_body} bytes")
    body = await reader.readexactly(length) if length > 0 else b""
    return method, target, headers, body


async def _write_response(writer: asyncio.StreamWriter, status: int,
                          payload: Any,
                          extra_headers: Dict[str, str],
                          keep_alive: bool) -> None:
    if isinstance(payload, str):
        # Pre-rendered text body (Prometheus exposition).
        body = payload.encode("utf-8")
        content_type = PROM_CONTENT_TYPE
    else:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        content_type = "application/json"
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}"
                 for name, value in extra_headers.items())
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                 + body)
    await writer.drain()


async def _handle_connection(service: SynthesisService,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            try:
                request = await _read_request(
                    reader, service.config.max_body_bytes)
            except _HttpError as exc:
                await _write_response(
                    writer, exc.status,
                    {"schema": "repro-service-error/1",
                     "error": str(exc)}, {}, keep_alive=False)
                break
            if request is None:
                break
            method, target, headers, body_bytes = request
            keep_alive = headers.get(
                "connection", "keep-alive").lower() != "close"
            parts = urlsplit(target)
            path, query = parts.path, parts.query
            body: Optional[Dict[str, Any]] = None
            if body_bytes:
                try:
                    parsed = json.loads(body_bytes)
                    body = parsed if isinstance(parsed, dict) else None
                except json.JSONDecodeError:
                    body = None
            try:
                status, payload, extra = await handle_api(
                    service, method, path, body,
                    headers=headers, query=query)
            except Exception as exc:  # keep the server alive
                status, payload, extra = 500, {
                    "schema": "repro-service-error/1",
                    "error": f"{type(exc).__name__}: {exc}"}, {}
            await _write_response(writer, status, payload, extra,
                                  keep_alive)
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError,
            asyncio.IncompleteReadError):
        pass
    except asyncio.CancelledError:
        # Loop shutdown while parked on a keep-alive read.  Swallowing
        # the cancellation lets the task finish cleanly, so asyncio's
        # connection_made callback has no exception to log.
        pass
    finally:
        with contextlib.suppress(Exception, asyncio.CancelledError):
            writer.close()
            await writer.wait_closed()


# ---------------------------------------------------------------------
class ServiceServer:
    """Async core: a warm service plus a listening socket."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service = SynthesisService(config)
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> "ServiceServer":
        # Warm the pool *before* accepting traffic: all forks happen
        # while this process is still quiet (no threads mid-lock) and
        # the first request pays no spin-up.
        self.service.pool.warmup()
        self._server = await asyncio.start_server(
            lambda r, w: _handle_connection(self.service, r, w),
            self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def shutdown(self) -> None:
        """Graceful drain: close the socket, finish in-flight work."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.drain()


def serve(config: ServiceConfig) -> int:
    """Blocking entry point for ``repro serve``; 0 on clean drain."""

    async def _main() -> None:
        server = await ServiceServer(config).start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signals
        print(f"repro service listening on {config.host}:{server.port} "
              f"(workers={config.workers}, mode={config.pool_mode}, "
              f"max_queue={config.max_queue}, "
              f"cache={config.cache_path or 'memory'})", flush=True)
        await stop.wait()
        print("draining: finishing in-flight jobs ...", flush=True)
        await server.shutdown()
        counters = server.service.metrics.snapshot()["counters"]
        print(f"drained cleanly: accepted={counters['accepted']} "
              f"coalesced={counters['coalesced']} "
              f"shed={counters['shed']} "
              f"completed={counters['completed']}", flush=True)

    asyncio.run(_main())
    return 0


# ---------------------------------------------------------------------
class ThreadedServer:
    """Run a service in a daemon thread (tests and benchmarks)."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.server: Optional[ServiceServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    @property
    def service(self) -> SynthesisService:
        assert self.server is not None
        return self.server.service

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    # ------------------------------------------------------------------
    def start(self) -> "ThreadedServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        if not self._started.wait(timeout=60.0):
            raise ReproError("service thread failed to start in time")
        if self._error is not None:
            raise ReproError(
                f"service failed to start: {self._error}") \
                from self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures
            self._error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = await ServiceServer(self.config).start()
        self._started.set()
        await self._stop.wait()
        await self.server.shutdown()

    def stop(self, timeout_s: float = 60.0) -> None:
        """Request a graceful drain and join the thread."""
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout_s)

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
