"""Thread-safe service counters and latency percentiles.

The serving layer's observability surface is deliberately tiny: a
handful of monotonic counters (accepted / coalesced / cache hits /
shed / executed / completed / degraded / errors), two gauges (queue
depth, draining), and a ring of recent per-job wall times from which
``/metrics`` derives p50/p95.  Everything is guarded by one lock —
pool callbacks, the admission path, and ``/metrics`` scrapes touch the
same state from different tasks (and, in thread-pool mode, different
threads).

Solver-level counters (pivots, cuts, cache probes, ...) are *not*
duplicated here: the service merges each job's :mod:`repro.perf` delta
into a service-lifetime :class:`repro.perf.PerfRegistry` and exposes
its snapshot alongside these counters.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Sequence

#: Monotonic counters the service increments; ``/metrics`` reports all
#: of them even when still zero, so dashboards never see missing keys.
COUNTER_NAMES = (
    "accepted",            # requests admitted (incl. coalesced + cached)
    "coalesced",           # joined an identical in-flight job
    "cache_hits",          # served from the persistent result cache
    "shed",                # rejected with 429 by admission control
    "executed",            # jobs actually dispatched to the worker pool
    "completed",           # executed jobs that reached a terminal state
    "degraded",            # completed with budget fallbacks fired
    "errors",              # completed with status error
    "invalid",             # completed but failed the design-rule check
    "budget_exhausted",    # completed with the budget fully spent
)


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


class ServiceMetrics:
    """Counters + a bounded latency ring, safe under concurrency."""

    def __init__(self, latency_window: int = 512,
                 names: Sequence[str] = COUNTER_NAMES) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {n: 0 for n in names}
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self._ema_ms: float = 0.0
        self._ema_seeded = False

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def observe_job_ms(self, wall_ms: float) -> None:
        """Record one executed job's wall time (drives the EMA)."""
        with self._lock:
            self._latencies.append(float(wall_ms))
            if self._ema_seeded:
                self._ema_ms = 0.8 * self._ema_ms + 0.2 * float(wall_ms)
            else:
                self._ema_ms = float(wall_ms)
                self._ema_seeded = True

    # ------------------------------------------------------------------
    @property
    def ema_job_ms(self) -> float:
        """Smoothed per-job wall time; 0.0 until the first completion."""
        with self._lock:
            return self._ema_ms

    def seed_ema_ms(self, value: float) -> None:
        """Preload the EMA (admission-control tests and restarts)."""
        with self._lock:
            self._ema_ms = float(value)
            self._ema_seeded = True

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            ordered = sorted(self._latencies)
            latency = {
                "count": len(ordered),
                "p50_ms": round(percentile(ordered, 0.50), 3),
                "p95_ms": round(percentile(ordered, 0.95), 3),
                "max_ms": round(ordered[-1], 3) if ordered else 0.0,
                "mean_ms": (round(sum(ordered) / len(ordered), 3)
                            if ordered else 0.0),
            }
            return {
                "counters": dict(self._counters),
                "latency": latency,
                "ema_job_ms": round(self._ema_ms, 3),
            }
