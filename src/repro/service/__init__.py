"""Long-running synthesis service: an async job server over the flows.

Every other entry point (``repro.synthesize()``, the CLI, ``repro
explore``) is a one-shot process; this package is the serving layer
that amortizes warm state across requests:

* :class:`ServiceConfig` — frozen server knobs
  (:mod:`repro.service.jobs`);
* :class:`SynthesisService` — admission queue with deadline-aware load
  shedding, request coalescing keyed by
  :func:`repro.explore.keys.job_key`, the shared persistent
  :class:`~repro.explore.cache.ResultCache`, and the warm
  :class:`~repro.service.pool.WorkerPool`
  (:mod:`repro.service.app`);
* :func:`serve` / :class:`ServiceServer` / :class:`ThreadedServer` —
  the asyncio HTTP front end (``POST /v1/synthesize``,
  ``POST /v1/sweep``, ``GET /v1/jobs/<id>``, ``GET /healthz``,
  ``GET /metrics``) with graceful SIGTERM drain
  (:mod:`repro.service.server`);
* :class:`ServiceClient` — the stdlib client used by tests, CI smoke,
  and the benchmark (:mod:`repro.service.client`).

Responses conform to ``docs/schema/service_response.schema.json``.
"""

from repro.service.app import (RESPONSE_SCHEMA, ShedRequest,
                               SynthesisService, job_response)
from repro.service.client import (ServiceClient, ServiceError,
                                  ServiceUnavailable, backoff_delay_s,
                                  parse_retry_after)
from repro.service.jobs import (Job, JobStore, ServiceConfig,
                                ShardIdentity)
from repro.service.metrics import ServiceMetrics
from repro.service.pool import WorkerPool
from repro.service.server import ServiceServer, ThreadedServer, serve

__all__ = [
    "ServiceConfig",
    "SynthesisService",
    "ShedRequest",
    "RESPONSE_SCHEMA",
    "job_response",
    "Job",
    "JobStore",
    "ServiceMetrics",
    "WorkerPool",
    "ServiceServer",
    "ThreadedServer",
    "serve",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "ShardIdentity",
    "backoff_delay_s",
    "parse_retry_after",
]
