"""The synthesis service: admission -> coalesce -> pool -> cache.

:class:`SynthesisService` owns every piece of serving state — the warm
:class:`~repro.service.pool.WorkerPool`, the shared persistent
:class:`~repro.explore.cache.ResultCache`, the in-flight coalescing
map, the bounded job store, and the metrics — and implements the
request lifecycle:

1. **cache** — a request whose content hash is already cached is
   answered without queueing (``cache_hits``);
2. **coalesce** — identical to an in-flight job, it attaches to that
   job's completion event instead of solving again (``coalesced``);
3. **admission** — otherwise it must pass load shedding: queue depth
   below ``max_queue`` *and* projected queue wait (depth x EMA job
   time / workers) within the request deadline, else 429 with a
   ``Retry-After`` hint (``shed``);
4. **execute** — admitted jobs run on the pool under a worker-count
   semaphore; the per-request deadline rides into the worker as a
   :class:`repro.robustness.budget.SolveBudget`, so overloaded solves
   degrade gracefully instead of being killed;
5. **complete** — the record lands in the cache (making later
   identical requests free), its perf delta is merged, and every
   waiter — coalesced followers included — is released at once.

All state transitions happen on the event-loop thread; the pool is the
only concurrency boundary and crosses it with plain-data records.
"""

from __future__ import annotations

import asyncio
import math
import time
import uuid
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.oracle_store import OracleStore, activate
from repro.errors import ReproError
from repro.explore.cache import open_result_cache
from repro.explore.pareto import OBJECTIVES, pareto_front
from repro.explore.spec import SweepJob, SweepSpec
from repro.io_json import SCHEMA_VERSION
from repro.obs import (HUB, TRACER, extract_headers, inject_payload)
from repro.obs.prometheus import render_service_metrics
from repro.perf import PERF, PerfRegistry
from repro.robustness.budget import carve_deadline_ms
from repro.service import catalog
from repro.service.jobs import Job, JobStore, ServiceConfig
from repro.service.metrics import ServiceMetrics
from repro.service.pool import WorkerPool

#: Version tag stamped on every job response object.
RESPONSE_SCHEMA = "repro-service-response/1"
#: Job statuses that carry a full record.
COMPLETED_STATUSES = ("ok", "degraded")


class ShedRequest(ReproError):
    """Admission control rejected the request (HTTP 429)."""

    def __init__(self, reason: str, retry_after_s: int) -> None:
        super().__init__(reason)
        self.retry_after_s = max(1, int(retry_after_s))


class SynthesisService:
    """Long-running serving state shared by every connection."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.metrics = ServiceMetrics()
        self.perf = PerfRegistry()
        # A path opens the local JSONL cache; a remote://host:port
        # spec mounts the cluster's shared cache server read-through.
        self.cache = open_result_cache(config.cache_path,
                                       sync=config.cache_sync)
        # Activate the shared pin-oracle store BEFORE the pool exists:
        # forked workers inherit the active store (warm, read-only from
        # the file's point of view) and ship back only their deltas.
        self.oracle = OracleStore(config.oracle_path)
        self._previous_oracle = activate(self.oracle)
        self.pool = WorkerPool(workers=config.workers,
                               mode=config.pool_mode,
                               job_runner=config.job_runner)
        self.store = JobStore(config.retained_jobs)
        self.inflight: Dict[str, Job] = {}
        self.queue_depth = 0
        self.draining = False
        self._slots = asyncio.Semaphore(self.pool.workers)
        self._tasks: set = set()

    # -- readiness -----------------------------------------------------
    @property
    def ready(self) -> bool:
        """Readiness (distinct from liveness): the pool is warm and, in
        shard mode, this server's ring seat is coherent.  ``/healthz``
        answers 503 until this is True, so load balancers and the
        cluster supervisor never route to a shard that would queue
        behind its own fork storm or sit outside the key space."""
        if self.draining or not self.pool.warmed:
            return False
        shard = self.config.shard
        return shard is None or shard.valid()

    # -- admission -----------------------------------------------------
    def projected_wait_ms(self, new_jobs: int = 1) -> float:
        """Expected queue wait for a request arriving now."""
        ema = self.metrics.ema_job_ms
        depth = self.queue_depth + max(0, new_jobs - 1)
        return depth * ema / self.pool.workers

    def check_admission(self, deadline_ms: Optional[float],
                        new_jobs: int = 1) -> None:
        """Raise :class:`ShedRequest` unless the work can be admitted."""
        ema_s = max(0.001, self.metrics.ema_job_ms / 1000.0)
        if self.queue_depth + new_jobs > self.config.max_queue:
            self.metrics.inc("shed")
            raise ShedRequest(
                f"queue full ({self.queue_depth}/"
                f"{self.config.max_queue})",
                retry_after_s=math.ceil(ema_s))
        projected = self.projected_wait_ms(new_jobs)
        if deadline_ms is not None and projected > deadline_ms:
            self.metrics.inc("shed")
            raise ShedRequest(
                f"projected queue wait {projected:.0f}ms exceeds "
                f"deadline {deadline_ms:.0f}ms",
                retry_after_s=math.ceil(projected / 1000.0))

    # -- submission ----------------------------------------------------
    def submit_point(self, point: SweepJob,
                     deadline_ms: Optional[float],
                     slice_ms: Optional[float] = None,
                     preadmitted: bool = False) -> Tuple[Job, str]:
        """Admit one content-addressed solve; returns (job, how) where
        ``how`` is ``cached`` / ``coalesced`` / ``new``."""
        existing = self.inflight.get(point.key)
        if existing is not None:
            existing.coalesced += 1
            self.metrics.inc("accepted")
            self.metrics.inc("coalesced")
            return existing, "coalesced"
        cached = self.cache.get(point.key)
        if cached is not None:
            job = Job(key=point.key, params=dict(point.params),
                      cached=True)
            job.finish(cached)
            self.store.add(job)
            self.metrics.inc("accepted")
            self.metrics.inc("cache_hits")
            return job, "cached"
        if not preadmitted:
            self.check_admission(deadline_ms)
        budget_ms = slice_ms if slice_ms is not None else deadline_ms
        payload = inject_payload(point.payload(deadline_ms=budget_ms))
        # Served results are design-rule-checked in the worker; a
        # violating result comes back ``invalid`` (non-cacheable), so
        # the cache and coalesced followers only ever see clean ones.
        payload["check"] = True
        job = Job(key=point.key, params=dict(point.params),
                  payload=payload)
        self.inflight[point.key] = job
        self.store.add(job)
        self.queue_depth += 1
        self.metrics.inc("accepted")
        self.metrics.inc("executed")
        self._spawn(self._execute(job))
        return job, "new"

    def submit_sweep(self, spec: SweepSpec, points: Sequence[SweepJob],
                     design_name: str,
                     deadline_ms: Optional[float]) -> Job:
        """Admit a whole sweep atomically (all points or a 429)."""
        fresh = {p.key for p in points
                 if p.key not in self.inflight and p.key not in self.cache}
        self.check_admission(deadline_ms, new_jobs=len(fresh))
        slice_ms = carve_deadline_ms(deadline_ms, max(1, len(fresh)),
                                     workers=self.pool.workers)
        sweep = Job(key="", kind="sweep",
                    params={"design": design_name,
                            "spec": spec.to_dict()})
        # No awaits between point submissions, so the upfront capacity
        # check still holds for every per-point admission below.
        sweep.children = [
            self.submit_point(p, deadline_ms, slice_ms=slice_ms,
                              preadmitted=True)[0]
            for p in points]
        self.store.add(sweep)
        self._spawn(self._finish_sweep(sweep))
        return sweep

    # -- execution -----------------------------------------------------
    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _execute(self, job: Job) -> None:
        start = time.perf_counter()
        try:
            async with self._slots:
                job.status = "running"
                # This task inherited the submitting request's trace
                # context at _spawn time, so the execute span parents
                # under the request span (and under it, the worker's
                # job.solve span after the delta merge below).
                with TRACER.span("service.execute", layer="service",
                                 job_id=job.id) as sp:
                    record = await self.pool.run(job.payload)
                    if isinstance(record, dict):
                        sp.set(status=record.get("status", "error"))
            if not isinstance(record, dict):
                record = {"status": "error",
                          "error": "job runner returned "
                                   f"{type(record).__name__}"}
        except Exception as exc:  # pool infrastructure failure
            record = {"status": "error",
                      "error": f"worker pool failure: {exc}"}
        wall_ms = (time.perf_counter() - start) * 1000.0
        record.setdefault("wall_ms", round(wall_ms, 3))
        delta = record.get("perf") or {}
        self.perf.merge(delta)
        spans = record.pop("spans", None)
        hub_delta = record.pop("hub", None)
        if self.pool.mode == "process":
            # Pool workers incremented *their* PERF; fold the delta in
            # so this process's registry sees the whole service.
            PERF.merge(delta)
            # Likewise the pin-oracle entries the worker proved: merge
            # them so the next request (on any worker after a respawn,
            # or answered inline) starts warmer.
            self.oracle.merge(record.get("oracle_delta"))
            # And the worker's spans / histogram observations (thread
            # workers recorded straight into this process's globals).
            TRACER.merge(spans)
            HUB.merge(hub_delta)
        record.pop("oracle_delta", None)
        self.cache.put(job.key, record)
        HUB.observe("service.job_wall_ms", wall_ms)
        self.queue_depth -= 1
        self.inflight.pop(job.key, None)
        self.metrics.observe_job_ms(wall_ms)
        self.metrics.inc("completed")
        status = record.get("status")
        if status == "degraded":
            self.metrics.inc("degraded")
        elif status == "error":
            self.metrics.inc("errors")
        elif status == "invalid":
            self.metrics.inc("invalid")
        elif status == "budget_exhausted":
            self.metrics.inc("budget_exhausted")
        job.finish(record)

    async def _finish_sweep(self, sweep: Job) -> None:
        for child in sweep.children:
            await child.wait()
        points: List[Dict[str, Any]] = []
        for index, child in enumerate(sweep.children):
            record = child.record or {}
            point = {"index": index, "key": child.key,
                     "params": child.params, "status": child.status,
                     "cached": child.cached, "job_id": child.id,
                     "wall_ms": record.get("wall_ms", 0.0)}
            for name in ("metrics", "error"):
                if name in record:
                    point[name] = record[name]
            points.append(point)
        done = [p for p in points
                if p.get("status") in COMPLETED_STATUSES
                and "metrics" in p]
        front = pareto_front([p["metrics"] for p in done], OBJECTIVES)
        counts: Dict[str, int] = {}
        for point in points:
            counts[point["status"]] = counts.get(point["status"], 0) + 1
        sweep.finish({
            "status": ("ok" if all(p["status"] == "ok" for p in points)
                       else "degraded"),
            "points": points,
            "pareto": [done[i]["index"] for i in front],
            "status_counts": counts,
            "wall_ms": round(sum(p["wall_ms"] for p in points), 3),
        })

    # -- shutdown ------------------------------------------------------
    async def drain(self) -> None:
        """Stop admitting, finish every in-flight job, stop the pool."""
        self.draining = True
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)
        self.pool.shutdown()
        activate(self._previous_oracle)


# ---------------------------------------------------------------------
# Response building
# ---------------------------------------------------------------------
def job_response(job: Job) -> Dict[str, Any]:
    """The schema-governed JSON object for a job's current state."""
    out: Dict[str, Any] = {
        "schema": RESPONSE_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "job_id": job.id,
        "kind": job.kind,
        "status": job.status,
        "cached": job.cached,
        "coalesced": job.coalesced,
        "params": job.params,
    }
    if job.key:
        out["key"] = job.key
    if not job.done:
        out["location"] = f"/v1/jobs/{job.id}"
        return out
    record = job.record or {}
    for name in ("metrics", "stats", "diagnostics", "check", "wall_ms",
                 "error", "progress", "points", "pareto",
                 "status_counts"):
        if name in record:
            out[name] = record[name]
    return out


def health_payload(service: SynthesisService) -> Dict[str, Any]:
    if service.draining:
        status = "draining"
    elif service.ready:
        status = "ok"
    else:
        status = "warming"
    out = {
        "schema": "repro-service-health/1",
        "status": status,
        "ready": service.ready,
        "live": True,
        "queue_depth": service.queue_depth,
        "workers": service.pool.workers,
        "jobs": len(service.store),
    }
    if service.config.shard is not None:
        out["shard"] = service.config.shard.to_dict()
    return out


def metrics_payload(service: SynthesisService) -> Dict[str, Any]:
    snap = service.metrics.snapshot()
    snap.update({
        "queue_depth": service.queue_depth,
        "inflight": len(service.inflight),
        "draining": service.draining,
        "jobs_retained": len(service.store),
    })
    # Scrape-time gauges: the hub is the one surface Prometheus (and
    # the cluster front's auto-scaling aggregation) reads them from.
    counters = snap.get("counters", {})
    accepted = counters.get("accepted", 0)
    HUB.gauges({
        "service.queue_depth": service.queue_depth,
        "service.inflight": len(service.inflight),
        "service.ema_job_ms": snap.get("ema_job_ms", 0.0),
        "service.cache_hit_ratio": (
            counters.get("cache_hits", 0) / accepted if accepted
            else 0.0),
    })
    hub = HUB.snapshot()
    out = {
        "schema": "repro-service-metrics/1",
        "service": snap,
        "workers": {"count": service.pool.workers,
                    "mode": service.pool.mode},
        "cache": service.cache.stats(),
        "oracle": service.oracle.stats(),
        "perf": service.perf.snapshot(),
        # Counters/timings stay under "perf"; the hub section carries
        # only what PerfRegistry cannot: distributions and gauges.
        "obs": {"histograms": hub["histograms"],
                "gauges": hub["gauges"]},
        "tracer": TRACER.stats(),
    }
    if service.config.shard is not None:
        out["shard"] = service.config.shard.to_dict()
    return out


# ---------------------------------------------------------------------
# Request handlers (HTTP status, payload, extra headers).  The payload
# is normally the JSON document; a ``str`` payload is a pre-rendered
# text body (Prometheus exposition) the server sends as text/plain.
# ---------------------------------------------------------------------
Handled = Tuple[int, Union[Dict[str, Any], str], Dict[str, str]]


def wants_prometheus(headers: Optional[Dict[str, str]],
                     query: str = "") -> bool:
    """Content negotiation for ``/metrics``: explicit
    ``?format=prometheus`` / ``?format=json`` wins, else the Accept
    header decides (JSON stays the default)."""
    query = query or ""
    if "format=prometheus" in query:
        return True
    if "format=json" in query:
        return False
    accept = (headers or {}).get("accept", "")
    return "text/plain" in accept or "openmetrics" in accept


def _error(status: int, message: str, **extra: Any) -> Handled:
    payload = {"schema": "repro-service-error/1", "error": message}
    payload.update(extra)
    return status, payload, {}


def _deadline_ms(body: Dict[str, Any],
                 config: ServiceConfig) -> Optional[float]:
    raw = body.get("timeout_ms", config.default_timeout_ms)
    if raw is None:
        return None
    deadline = float(raw)
    if deadline <= 0:
        raise ReproError(f"timeout_ms must be positive, got {raw!r}")
    return deadline


async def _respond_job(job: Job, wait: bool,
                       deadline_ms: Optional[float]) -> Handled:
    if wait and not job.done:
        # The job's own budget bounds the solve; double it (plus slack)
        # to cover queue wait, then fall back to async polling.
        limit_s = (None if deadline_ms is None
                   else (2.0 * deadline_ms + 2000.0) / 1000.0)
        await job.wait(limit_s)
    status = 200 if job.done else 202
    return status, job_response(job), {}


async def handle_api(service: SynthesisService, method: str, path: str,
                     body: Optional[Dict[str, Any]],
                     headers: Optional[Dict[str, str]] = None,
                     query: str = "") -> Handled:
    """Route one parsed request; returns (status, payload, headers).

    ``headers`` are the lowercase request headers (used for trace
    propagation and /metrics content negotiation); ``query`` is the
    raw query string.  Both default to empty for callers that predate
    them.
    """
    if path == "/healthz":
        if method != "GET":
            return _error(405, "method not allowed")
        # Liveness is the TCP answer itself; the status code carries
        # readiness, so one endpoint serves both probes.
        if service.ready:
            return 200, health_payload(service), {}
        return 503, health_payload(service), {"Retry-After": "1"}
    if path == "/metrics":
        if method != "GET":
            return _error(405, "method not allowed")
        payload = metrics_payload(service)
        if wants_prometheus(headers, query):
            return 200, render_service_metrics(payload), {}
        return 200, payload, {}
    if path.startswith("/v1/jobs/"):
        if method != "GET":
            return _error(405, "method not allowed")
        job = service.store.get(path[len("/v1/jobs/"):])
        if job is None:
            return _error(404, "no such job")
        return 200, job_response(job), {}
    if path in ("/v1/synthesize", "/v1/sweep"):
        if method != "POST":
            return _error(405, "method not allowed")
        # Every submission gets a request id; sampled requests also
        # carry their trace id back, so client-side failures are
        # correlatable with server logs and trace exports.
        request_id = uuid.uuid4().hex[:12]
        with TRACER.attach(extract_headers(headers)), \
                TRACER.span("service.request", layer="service",
                            endpoint=path) as sp:
            sp.set(request_id=request_id)
            status, payload, extra = await _handle_submit(
                service, path, body, sp)
        extra = dict(extra)
        extra["X-Repro-Request-Id"] = request_id
        if sp.sampled:
            extra["X-Repro-Trace-Id"] = sp.trace_id
        return status, payload, extra
    return _error(404, f"no such endpoint {path!r}")


async def _handle_submit(service: SynthesisService, path: str,
                         body: Optional[Dict[str, Any]],
                         sp) -> Handled:
    """The /v1/synthesize | /v1/sweep body, inside the request span."""
    if service.draining:
        status, payload, _ = _error(503, "service is draining",
                                    retry_after_s=1)
        return status, payload, {"Retry-After": "1"}
    if body is None:
        return _error(400, "request body must be a JSON object")
    try:
        deadline_ms = _deadline_ms(body, service.config)
        wait = bool(body.get("wait", True))
        if path == "/v1/synthesize":
            _space, point = catalog.synthesize_job(body)
            job, how = service.submit_point(point, deadline_ms)
            sp.set(how=how, design=body.get("design"))
        else:
            space, spec, points = catalog.sweep_jobs(body)
            job = service.submit_sweep(spec, points, space.name,
                                       deadline_ms)
            sp.set(design=space.name, points=len(points))
        sp.set(job_id=job.id)
    except ShedRequest as exc:
        sp.set(shed=True)
        status, payload, _ = _error(
            429, str(exc), retry_after_s=exc.retry_after_s)
        return status, payload, {"Retry-After":
                                 str(exc.retry_after_s)}
    except (ReproError, ValueError, TypeError) as exc:
        return _error(400, str(exc))
    return await _respond_job(job, wait, deadline_ms)
