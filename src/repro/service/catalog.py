"""Resolve request payloads into content-addressed sweep jobs.

The service speaks the same job language as the design-space explorer:
a request names a design (a built-in from the catalog, or an inline
``{"graph": ..., "partitioning": ...}`` in :mod:`repro.io_json` form)
plus sweep parameters, and this module materializes it through
:class:`repro.explore.spec.SweepSpec` into :class:`SweepJob`\\ s.  That
reuse is what makes request coalescing sound — a ``/v1/synthesize``
request, a ``/v1/sweep`` point, and a CLI ``repro explore`` point with
the same content all hash to the same :func:`repro.explore.keys.job_key`
and therefore share one solve and one cache entry.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple, Union

from repro.errors import ReproError
from repro.explore.spec import (DesignSpace, KNOWN_AXES, SweepJob,
                                SweepSpec)
from repro.io_json import graph_from_dict, partitioning_from_dict

#: Built-in design names -> DesignSpace factory kwargs.  Mirrors the
#: CLI catalog; the elliptic designs pin their resource vectors per
#: rate, matching the published experiments.
_BUILTINS = ("ar-simple", "ar-general", "ar-general-bidir",
             "ar-stacked-2", "ar-stacked-4",
             "elliptic", "elliptic-bidir", "fir", "dct")


def design_space(design: Union[str, Mapping[str, Any]]) -> DesignSpace:
    """A :class:`DesignSpace` for a built-in name or an inline design."""
    if isinstance(design, str):
        return _builtin_space(design)
    if isinstance(design, Mapping):
        try:
            graph = graph_from_dict(design["graph"])
            partitioning = partitioning_from_dict(design["partitioning"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(
                f"inline design needs 'graph' and 'partitioning' in "
                f"repro.io_json form: {exc}") from exc
        timing = design.get("timing", "ar")
        return DesignSpace(name=str(design.get("name", "inline")),
                           graph=graph, partitioning=partitioning,
                           timing=timing)
    raise ReproError(
        f"design must be a built-in name or an inline design object, "
        f"got {type(design).__name__}")


def _builtin_space(name: str) -> DesignSpace:
    from repro.designs import (AR_GENERAL_PINS_BIDIR,
                               AR_GENERAL_PINS_UNIDIR, AR_SIMPLE_PINS,
                               DCT_PINS, ELLIPTIC_PINS_BIDIR,
                               ELLIPTIC_PINS_UNIDIR, FIR_PINS,
                               ar_general_design,
                               ar_simple_design, ar_stacked_design,
                               ar_stacked_pins, dct_design,
                               elliptic_design, elliptic_resources,
                               fir_design)
    if name == "ar-simple":
        return DesignSpace(name=name, graph=ar_simple_design(),
                           partitioning=AR_SIMPLE_PINS, timing="ar")
    if name.startswith("ar-stacked-"):
        try:
            copies = int(name[len("ar-stacked-"):])
        except ValueError:
            copies = 0
        if copies >= 1:
            return DesignSpace(name=name,
                               graph=ar_stacked_design(copies),
                               partitioning=ar_stacked_pins(copies),
                               timing="ar")
    if name == "ar-general":
        return DesignSpace(name=name, graph=ar_general_design(),
                           partitioning=AR_GENERAL_PINS_UNIDIR,
                           timing="ar")
    if name == "ar-general-bidir":
        return DesignSpace(name=name, graph=ar_general_design(),
                           partitioning=AR_GENERAL_PINS_BIDIR,
                           timing="ar")
    if name == "elliptic":
        return DesignSpace(name=name, graph=elliptic_design(),
                           partitioning=ELLIPTIC_PINS_UNIDIR,
                           timing="elliptic",
                           resources_for=elliptic_resources)
    if name == "elliptic-bidir":
        return DesignSpace(name=name, graph=elliptic_design(),
                           partitioning=ELLIPTIC_PINS_BIDIR,
                           timing="elliptic",
                           resources_for=elliptic_resources)
    if name == "fir":
        return DesignSpace(name=name, graph=fir_design(),
                           partitioning=FIR_PINS, timing="ar")
    if name == "dct":
        return DesignSpace(name=name, graph=dct_design(),
                           partitioning=DCT_PINS, timing="ar")
    raise ReproError(
        f"unknown design {name!r}; expected one of "
        f"{sorted(_BUILTINS)} or an inline design object")


# ---------------------------------------------------------------------
def request_params(body: Mapping[str, Any]) -> Dict[str, Any]:
    """Sweep parameters from a request body's top-level fields."""
    params = {axis: body[axis] for axis in KNOWN_AXES if axis in body}
    extra = body.get("options")
    if extra is not None:
        if not isinstance(extra, Mapping):
            raise ReproError("'options' must be an object")
        for name, value in extra.items():
            if name not in KNOWN_AXES:
                raise ReproError(
                    f"unknown option {name!r}; expected one of "
                    f"{sorted(KNOWN_AXES)}")
            params.setdefault(name, value)
    return params


def synthesize_job(body: Mapping[str, Any]) -> Tuple[DesignSpace,
                                                     SweepJob]:
    """Materialize one ``/v1/synthesize`` request into a job."""
    if "design" not in body:
        raise ReproError("request body needs a 'design' field")
    space = design_space(body["design"])
    spec = SweepSpec(base=request_params(body))
    jobs = spec.expand(space)
    return space, jobs[0]


def sweep_jobs(body: Mapping[str, Any]) -> Tuple[DesignSpace, SweepSpec,
                                                 List[SweepJob]]:
    """Materialize a ``/v1/sweep`` request into its point jobs."""
    if "design" not in body:
        raise ReproError("request body needs a 'design' field")
    space = design_space(body["design"])
    axes = body.get("axes") or {}
    points = body.get("points") or ()
    if not isinstance(axes, Mapping):
        raise ReproError("'axes' must be an object of value lists")
    spec = SweepSpec(axes=axes, points=points,
                     base=request_params(body))
    jobs = spec.expand(space)
    if not jobs:
        raise ReproError("sweep expands to zero points")
    return space, spec, jobs
