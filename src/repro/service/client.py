"""Stdlib HTTP client for the synthesis service.

Used by the test suite, the CI ``serve-smoke`` job, and the service
benchmark; also a reasonable starting point for real callers.  One
:class:`ServiceClient` is safe to share across threads — every call
opens a fresh ``http.client`` connection, which keeps the client free
of connection-state locking at the cost of a TCP handshake per call
(negligible next to a synthesis solve).

Admission rejections surface as :class:`ServiceUnavailable` carrying
the server's ``Retry-After`` hint; other 4xx/5xx raise
:class:`ServiceError` with the decoded error payload attached.

Retries (opt-in via ``retries=N``) use capped jittered exponential
backoff — see :func:`backoff_delay_s` — never a bare fixed sleep: the
exponential keeps a retrying fleet from hammering a shedding server,
the server's ``Retry-After`` hint acts as a floor when it asks for
longer, and the jitter decorrelates clients that were shed by the
same event.  A 429/503 payload may carry a shard-redirect hint
(``{"redirect": {"host", "port"}}``, attached by the cluster front
tier naming a key's owner shard); retries honor it by re-aiming the
next attempt.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import (Any, Callable, Dict, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro.errors import ReproError


class ServiceError(ReproError):
    """The service answered with an error status.

    When the server stamped correlation ids on the response
    (``X-Repro-Request-Id`` always on ``/v1/*`` POSTs,
    ``X-Repro-Trace-Id`` when the request landed on a sampled trace),
    they ride along as ``request_id`` / ``trace_id`` and are appended
    to the message — an operator can go straight from a client-side
    stack trace to the server's trace export.
    """

    def __init__(self, message: str, status: int = 0,
                 payload: Optional[Dict[str, Any]] = None,
                 request_id: Optional[str] = None,
                 trace_id: Optional[str] = None) -> None:
        ids = [f"request_id={request_id}" if request_id else "",
               f"trace_id={trace_id}" if trace_id else ""]
        suffix = " ".join(part for part in ids if part)
        super().__init__(f"{message} [{suffix}]" if suffix else message)
        self.status = status
        self.payload = payload or {}
        self.request_id = request_id
        self.trace_id = trace_id


class ServiceUnavailable(ServiceError):
    """429/503: request shed or service draining; retry later."""

    def __init__(self, message: str, status: int,
                 payload: Optional[Dict[str, Any]] = None,
                 retry_after_s: int = 1,
                 retry_after_hint: Optional[int] = None,
                 request_id: Optional[str] = None,
                 trace_id: Optional[str] = None) -> None:
        super().__init__(message, status=status, payload=payload,
                         request_id=request_id, trace_id=trace_id)
        self.retry_after_s = max(1, int(retry_after_s))
        #: The server's actual Retry-After, or None when the header
        #: was absent — unlike ``retry_after_s`` this never invents a
        #: default, so backoff can distinguish "server said 1s" from
        #: "server said nothing".
        self.retry_after_hint = retry_after_hint


#: Ceiling on Retry-After values decoded from an HTTP-date.  Dates
#: come from wall clocks that may disagree between client and server;
#: a skewed (or hostile) far-future date must not park a client for
#: hours, so date-derived holds are capped where delta-seconds —
#: which the server computed itself — are taken at face value.
MAX_DATE_RETRY_AFTER_S = 300


def parse_retry_after(value: Optional[str], default: int = 1,
                      now: Optional[float] = None) -> int:
    """Decode a ``Retry-After`` header value, defensively.

    RFC 9110 allows both delta-seconds and an HTTP-date; proxies add
    their own creative spellings.  Delta-seconds must be a plain
    non-negative number (int or float); an HTTP-date is decoded via
    :func:`email.utils.parsedate_to_datetime` into the remaining wait
    (measured against ``now``, a Unix timestamp, defaulting to the
    real clock) and capped at :data:`MAX_DATE_RETRY_AFTER_S`.
    Anything else — including a date already in the past — falls back
    to ``default`` rather than crashing the client on an error path.
    """
    if value is None:
        return default
    try:
        seconds = float(value.strip())
    except AttributeError:
        return default
    except ValueError:
        seconds = _retry_after_date_delta(value, now)
        if seconds is None:
            return default
        seconds = min(seconds, float(MAX_DATE_RETRY_AFTER_S))
    if seconds != seconds or seconds < 0 or seconds == float("inf"):
        return default
    return max(default, int(seconds))


def _retry_after_date_delta(value: str,
                            now: Optional[float]) -> Optional[float]:
    """Seconds until an RFC 9110 HTTP-date, or None if unparseable."""
    import email.utils
    from datetime import timezone
    try:
        when = email.utils.parsedate_to_datetime(value.strip())
    except (TypeError, ValueError):
        return None
    if when is None:
        return None
    if when.tzinfo is None:
        # RFC 5322 parsing can yield a naive datetime for "-0000";
        # HTTP-dates are GMT by definition.
        when = when.replace(tzinfo=timezone.utc)
    reference = time.time() if now is None else float(now)
    return when.timestamp() - reference


def backoff_delay_s(attempt: int,
                    retry_after_s: Optional[float] = None, *,
                    base_s: float = 0.5, factor: float = 2.0,
                    cap_s: float = 30.0, jitter: float = 0.1,
                    rng: Optional[Callable[[], float]] = None) -> float:
    """Sleep before retry ``attempt`` (0-based).

    ``min(cap_s, base_s * factor**attempt)``, raised to the server's
    ``retry_after_s`` when the server asked for longer (the hint is a
    floor, never capped — the server knows its own drain schedule),
    then multiplied by ``1 ± jitter`` so clients shed together do not
    retry together.  ``rng`` (a 0..1 callable) makes the jitter
    injectable; ``jitter=0`` gives the deterministic schedule the
    unit tests pin.
    """
    delay = min(float(cap_s),
                float(base_s) * float(factor) ** max(0, int(attempt)))
    if retry_after_s is not None:
        delay = max(delay, float(retry_after_s))
    if jitter:
        draw = rng() if rng is not None else random.random()
        delay *= 1.0 + float(jitter) * (2.0 * draw - 1.0)
    return max(0.0, delay)


class ServiceClient:
    """Thin JSON-over-HTTP wrapper around the service endpoints."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8764,
                 timeout_s: float = 120.0, retries: int = 0,
                 backoff_base_s: float = 0.5,
                 backoff_cap_s: float = 30.0,
                 backoff_jitter: float = 0.1,
                 rng: Optional[Callable[[], float]] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.backoff_jitter = backoff_jitter
        self._rng = rng
        self._sleep = sleep

    # ------------------------------------------------------------------
    def request(self, method: str, path: str,
                body: Optional[Mapping[str, Any]] = None,
                retries: Optional[int] = None
                ) -> Tuple[int, Dict[str, Any]]:
        """HTTP exchange with up to ``retries`` backoff retries on
        429/503; returns (status, decoded payload).

        Each :class:`ServiceUnavailable` before the last attempt
        triggers a :func:`backoff_delay_s` sleep; a shard-redirect
        hint in the rejection payload re-aims subsequent attempts at
        the named host/port (the cluster front tier attaches the
        owner shard of the request's content key).
        """
        attempts = self.retries if retries is None else max(0, retries)
        host, port = self.host, self.port
        attempt = 0
        while True:
            try:
                return self._request_once(host, port, method, path,
                                          body)
            except ServiceUnavailable as exc:
                if attempt >= attempts:
                    raise
                redirect = exc.payload.get("redirect")
                if (isinstance(redirect, dict)
                        and isinstance(redirect.get("port"), int)):
                    host = str(redirect.get("host", host))
                    port = redirect["port"]
                self._sleep(backoff_delay_s(
                    attempt, exc.retry_after_hint,
                    base_s=self.backoff_base_s,
                    cap_s=self.backoff_cap_s,
                    jitter=self.backoff_jitter, rng=self._rng))
                attempt += 1

    def _request_once(self, host: str, port: int, method: str,
                      path: str, body: Optional[Mapping[str, Any]]
                      ) -> Tuple[int, Dict[str, Any]]:
        """One HTTP exchange; returns (status, decoded payload)."""
        conn = http.client.HTTPConnection(host, port,
                                          timeout=self.timeout_s)
        try:
            data = None if body is None else json.dumps(body)
            conn.request(method, path, body=data,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode("utf-8", "replace")}
            request_id = response.getheader("X-Repro-Request-Id")
            trace_id = response.getheader("X-Repro-Trace-Id")
            if response.status in (429, 503):
                raw_hint = response.getheader("Retry-After")
                hint = (None if raw_hint is None
                        else parse_retry_after(raw_hint))
                raise ServiceUnavailable(
                    payload.get("error", "service unavailable"),
                    status=response.status, payload=payload,
                    retry_after_s=1 if hint is None else hint,
                    retry_after_hint=hint,
                    request_id=request_id, trace_id=trace_id)
            if response.status >= 400:
                raise ServiceError(
                    payload.get("error",
                                f"HTTP {response.status}"),
                    status=response.status, payload=payload,
                    request_id=request_id, trace_id=trace_id)
            self._check_schema(payload)
            return response.status, payload
        finally:
            conn.close()

    @staticmethod
    def _check_schema(payload: Dict[str, Any]) -> None:
        """Tolerant response-version gate: unversioned payloads (from
        servers predating ``schema_version``) pass unchanged; payloads
        stamped with a newer version than this client understands fail
        loudly instead of surfacing as missing keys later."""
        from repro.io_json import FormatError, check_schema_version
        try:
            check_schema_version(payload, "service response")
        except FormatError as exc:
            raise ServiceError(str(exc), payload=payload) from None

    # ------------------------------------------------------------------
    def synthesize(self, design: Union[str, Mapping[str, Any]],
                   wait: bool = True,
                   timeout_ms: Optional[float] = None,
                   **params: Any) -> Dict[str, Any]:
        """POST /v1/synthesize; returns the job response object."""
        body: Dict[str, Any] = {"design": design, "wait": wait}
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        body.update(params)
        _status, payload = self.request("POST", "/v1/synthesize", body)
        return payload

    def sweep(self, design: Union[str, Mapping[str, Any]],
              axes: Optional[Mapping[str, Sequence[Any]]] = None,
              points: Optional[Sequence[Mapping[str, Any]]] = None,
              wait: bool = True, timeout_ms: Optional[float] = None,
              **params: Any) -> Dict[str, Any]:
        """POST /v1/sweep; returns the sweep job response object."""
        body: Dict[str, Any] = {"design": design, "wait": wait}
        if axes is not None:
            body["axes"] = {k: list(v) for k, v in axes.items()}
        if points is not None:
            body["points"] = [dict(p) for p in points]
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        body.update(params)
        _status, payload = self.request("POST", "/v1/sweep", body)
        return payload

    def job(self, job_id: str) -> Dict[str, Any]:
        """GET /v1/jobs/<id>."""
        _status, payload = self.request("GET", f"/v1/jobs/{job_id}")
        return payload

    def wait_job(self, job_id: str, poll_s: float = 0.05,
                 timeout_s: float = 120.0) -> Dict[str, Any]:
        """Poll a job until it reaches a terminal status."""
        deadline = time.monotonic() + timeout_s
        while True:
            payload = self.job(job_id)
            if payload.get("status") not in ("queued", "running"):
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still "
                    f"{payload.get('status')} after {timeout_s}s",
                    payload=payload)
            time.sleep(poll_s)

    def health(self) -> Dict[str, Any]:
        _status, payload = self.request("GET", "/healthz")
        return payload

    def metrics(self) -> Dict[str, Any]:
        _status, payload = self.request("GET", "/metrics")
        return payload

    def wait_until_ready(self, timeout_s: float = 15.0,
                         poll_s: float = 0.1) -> Dict[str, Any]:
        """Retry /healthz until the server answers (startup races)."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                return self.health()
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_s)
