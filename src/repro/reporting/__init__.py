"""Text reporting: the dissertation's tables and schedule listings."""

from repro.reporting.tables import TextTable
from repro.reporting.gantt import gantt_chart, synthesis_report
from repro.reporting.schedule_report import (
    schedule_listing,
    bus_allocation_table,
    bus_assignment_table,
    interconnect_listing,
    pins_summary,
)

__all__ = [
    "TextTable",
    "gantt_chart",
    "synthesis_report",
    "schedule_listing",
    "bus_allocation_table",
    "bus_assignment_table",
    "interconnect_listing",
    "pins_summary",
]
