"""ASCII Gantt rendering of pipelined schedules.

One lane per bound functional unit (and per bus), columns are control
steps; multi-cycle operations stretch across their cycles, and the
modulo-L steady state is visible as the lane pattern repeating every
initiation interval.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import Cdfg
from repro.core.interconnect import BusAssignment, Interconnect
from repro.rtl.binding import FuBinding, bind_functional_units
from repro.scheduling.base import Schedule

_CELL = 6


def _clip(text: str, width: int = _CELL - 1) -> str:
    return text[:width].ljust(width)


def gantt_chart(schedule: Schedule,
                interconnect: Optional[Interconnect] = None,
                assignment: Optional[BusAssignment] = None,
                binding: Optional[FuBinding] = None) -> str:
    """Render the schedule as unit/bus lanes over control steps."""
    graph = schedule.graph
    timing = schedule.timing
    binding = binding or bind_functional_units(schedule)
    n_steps = max((schedule.end_step(name)
                   for name in schedule.start_step), default=0) + 1

    lanes: Dict[str, List[str]] = {}

    def lane(label: str) -> List[str]:
        if label not in lanes:
            lanes[label] = [""] * n_steps
        return lanes[label]

    for node in graph.functional_nodes():
        if node.name not in schedule.start_step:
            continue
        unit = binding.unit_of.get(node.name)
        label = (f"P{node.partition}.{unit[1]}{unit[2]}"
                 if unit else f"P{node.partition}.?")
        row = lane(label)
        start = schedule.step(node.name)
        cycles = max(1, timing.cycles(node))
        for k in range(cycles):
            marker = node.name if k == 0 else "~" + node.name
            row[start + k] = marker

    for node in graph.io_nodes():
        if node.name not in schedule.start_step:
            continue
        if assignment is not None and node.name in assignment.bus_of:
            bus_index, _seg = assignment.of(node.name)
            label = f"bus C{bus_index}"
        else:
            label = f"io P{node.source_partition}>" \
                    f"P{node.dest_partition}"
        row = lane(label)
        step = schedule.step(node.name)
        existing = row[step]
        row[step] = (existing + "/" + node.name) if existing \
            else node.name

    width = max((len(label) for label in lanes), default=4) + 1
    header = " " * width + "".join(
        str(step).ljust(_CELL) for step in range(n_steps))
    ruler = " " * width + ("|" + " " * (_CELL - 1)) * n_steps
    lines = [f"initiation rate {schedule.initiation_rate}, "
             f"pipe length {schedule.pipe_length}",
             header, ruler]
    for label in sorted(lanes):
        cells = "".join(_clip(cell) + " " if cell else "." * (_CELL - 1)
                        + " " for cell in lanes[label])
        lines.append(label.ljust(width) + cells)
    return "\n".join(lines)


def synthesis_report(result) -> str:
    """One-call full report of a SynthesisResult."""
    from repro.reporting.schedule_report import (bus_allocation_table,
                                                 interconnect_listing,
                                                 pins_summary,
                                                 schedule_listing)

    blocks = [schedule_listing(result.schedule)]
    blocks.append(gantt_chart(result.schedule, result.interconnect,
                              result.assignment))
    if result.interconnect is not None:
        blocks.append(interconnect_listing(result.interconnect))
        if result.assignment is not None:
            blocks.append(bus_allocation_table(
                result.graph, result.schedule, result.interconnect,
                result.assignment))
    if result.simple_allocation is not None:
        blocks.append(interconnect_listing(
            result.simple_allocation.interconnect))
    blocks.append(pins_summary(result.partitioning, result.pins_used(),
                               pipe_length=result.pipe_length))
    return "\n\n".join(blocks)
