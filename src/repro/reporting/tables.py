"""Minimal fixed-width text tables (no external dependencies)."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


class TextTable:
    """Accumulates rows, renders an aligned ASCII table."""

    def __init__(self, headers: Sequence[str],
                 title: Optional[str] = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add(self, *cells) -> "TextTable":
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(row)}")
        self.rows.append(row)
        return self

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "| " + " | ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(cells)
            ) + " |"

        rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
        out: List[str] = []
        if self.title:
            out.append(self.title)
        out.append(rule)
        out.append(line(self.headers))
        out.append(rule)
        for row in self.rows:
            out.append(line(row))
        out.append(rule)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
