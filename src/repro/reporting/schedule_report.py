"""Renderers mirroring the dissertation's result presentation.

* :func:`schedule_listing` — per-control-step operation listing (the
  schedule figures, e.g. Figure 3.6);
* :func:`bus_allocation_table` — which transfer each bus carries in
  each control step (Tables 4.4, 4.6, ...);
* :func:`bus_assignment_table` — initial vs final I/O-to-bus assignment
  (Tables 4.3, 4.5, ...);
* :func:`interconnect_listing` — bus/port structure (the connection
  figures);
* :func:`pins_summary` — the summarized-results rows (Tables 4.2/4.10).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.cdfg.graph import Cdfg
from repro.core.interconnect import BusAssignment, Interconnect
from repro.partition.model import Partitioning
from repro.reporting.tables import TextTable
from repro.scheduling.base import Schedule


def schedule_listing(schedule: Schedule) -> str:
    """Per-step listing of functional and I/O operations."""
    by_step: Dict[int, List[str]] = {}
    for name, step in schedule.start_step.items():
        by_step.setdefault(step, []).append(name)
    table = TextTable(["step", "group", "operations"],
                      title=f"schedule (L={schedule.initiation_rate}, "
                            f"pipe length {schedule.pipe_length})")
    for step in sorted(by_step):
        ops = sorted(by_step[step],
                     key=lambda n: (not schedule.graph.node(n).is_io(), n))
        table.add(step, step % schedule.initiation_rate, " ".join(ops))
    return table.render()


def bus_allocation_table(graph: Cdfg, schedule: Schedule,
                         interconnect: Interconnect,
                         assignment: BusAssignment) -> str:
    """Control-step-group x bus grid of transfers (Table 4.4 style)."""
    L = schedule.initiation_rate
    headers = ["steps"] + [f"C{bus.index}" for bus in interconnect.buses]
    table = TextTable(headers, title="bus allocation")
    cells: Dict[int, Dict[int, List[str]]] = {}
    for node in graph.io_nodes():
        if node.name not in assignment.bus_of:
            continue
        bus_index, _seg = assignment.of(node.name)
        group = schedule.group(node.name)
        cells.setdefault(group, {}).setdefault(bus_index, []).append(
            node.name)
    for group in range(L):
        row = [f"{group}, {group + L}, ..."]
        for bus in interconnect.buses:
            row.append(" ".join(sorted(
                cells.get(group, {}).get(bus.index, []))))
        table.add(*row)
    return table.render()


def bus_assignment_table(initial: BusAssignment,
                         final: BusAssignment) -> str:
    """Initial vs final assignment per bus (Table 4.3 style)."""
    table = TextTable(["bus", "initial assignment", "final assignment"],
                      title="I/O operation to bus assignment")
    buses = sorted(set(initial.bus_of.values())
                   | set(final.bus_of.values()))
    initial_by = initial.by_bus()
    final_by = final.by_bus()
    for bus in buses:
        table.add(f"C{bus}",
                  " ".join(initial_by.get(bus, [])),
                  " ".join(final_by.get(bus, [])))
    return table.render()


def interconnect_listing(interconnect: Interconnect) -> str:
    """Bus structure: ports, widths, segments."""
    table = TextTable(["bus", "ports", "segments"],
                      title="interchip connection")
    for bus in interconnect.buses:
        if bus.bidirectional:
            ports = " ".join(f"P{p}<->{w}"
                             for p, w in sorted(bus.bi_widths.items()))
        else:
            outs = " ".join(f"P{p}->{w}"
                            for p, w in sorted(bus.out_widths.items()))
            ins = " ".join(f"->P{p}:{w}"
                           for p, w in sorted(bus.in_widths.items()))
            ports = f"{outs} | {ins}"
        segs = "/".join(str(s) for s in bus.effective_segments())
        table.add(f"C{bus.index}", ports, segs)
    return table.render()


def pins_summary(partitioning: Partitioning,
                 pins_used: Mapping[int, int],
                 pipe_length: Optional[int] = None,
                 label: str = "") -> str:
    """Pins-used vs budget per partition (Table 4.2 style row set)."""
    table = TextTable(["partition", "pins used", "budget"],
                      title=label or "pin usage")
    for index in partitioning.indices():
        table.add(f"P{index}", pins_used.get(index, 0),
                  partitioning.total_pins(index))
    text = table.render()
    if pipe_length is not None:
        text += f"\npipe length: {pipe_length} control steps"
    return text
