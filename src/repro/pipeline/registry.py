"""The pass-pipeline registry: declarative flows, pluggable backends.

Two registries live here:

* **Flow registry** — each chapter flow is a :class:`FlowSpec`: a
  named list of passes split into *setup* (validation, resource
  defaulting — before the flow's PERF phase), *phased* (the solver
  passes, timed under one ``flow.*`` PERF phase), and *finish*
  (result assembly and verification).  :func:`run_flow` executes a
  spec over a :class:`repro.pipeline.context.FlowContext`, checking
  the budget deadline at every pass boundary and appending the
  unified design-rule checker when ``ctx.check`` is set.
  :func:`repro.core.flow.synthesize` dispatches exclusively through
  this table — there is no bespoke per-flow call path left.

* **Scheduler backend registry** — every scheduler the Chapter 3/4/6
  flows can drive is a :class:`SchedulerBackend` entry; the built-ins
  are ``list`` (Figure 3.4 per-step list scheduling), ``heap``
  (heap-driven ready list), ``postpone`` (iterative postponement
  rounds), ``modulo`` (IMS placement + legalization), and ``fds``
  (the time-constrained Chapter 5 scheduler).  Third parties add
  their own with :func:`register_scheduler`; registered names are
  automatically valid ``--scheduler`` / explorer-axis values and
  differential-oracle participants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import TRACER
from repro.perf import PERF
from repro.pipeline import passes as P
from repro.pipeline.context import FlowContext

# ---------------------------------------------------------------------
# Scheduler backends
# ---------------------------------------------------------------------

#: Deprecated scheduler spellings -> canonical registry names.  Kept
#: working so pre-registry archives, sweep specs, and scripts load
#: unchanged; resolving one records a diagnostics warning.
DEPRECATED_SCHEDULER_ALIASES = {
    "list_scheduler": "list",
    "list-scheduler": "list",
    "postponement": "postpone",
    "postponed": "postpone",
    "force-directed": "fds",
    "force_directed": "fds",
}


@dataclass(frozen=True)
class SchedulerBackend:
    """One registered scheduler.

    ``kind`` declares the driving convention:

    * ``"iohooks"`` / ``"rounds"`` — resource-constrained; ``factory``
      is called as ``factory(graph, timing, rate, resources,
      hooks_factory, budget, diagnostics)`` and must return a
      finished :class:`Schedule`.  ``hooks_factory`` yields a fresh
      :class:`IoHooks` per call; backends that run several attempts
      (postponement rounds, modulo legalization retries) call it once
      per attempt.
    * ``"time"`` — time-constrained; called as ``factory(graph,
      timing, rate, pipe_length, budget, diagnostics)``.
    """

    name: str
    factory: Callable
    kind: str = "iohooks"
    flows: Tuple[str, ...] = ("simple", "connection-first")
    description: str = ""

    def run_scheduler(self, graph, timing, rate, resources,
                      hooks_factory, budget, diagnostics):
        return self.factory(graph, timing, rate, resources,
                            hooks_factory, budget, diagnostics)

    def run_time_scheduler(self, graph, timing, rate, pipe_length,
                           budget, diagnostics):
        return self.factory(graph, timing, rate, pipe_length,
                            budget, diagnostics)


_SCHEDULERS: Dict[str, SchedulerBackend] = {}


def register_scheduler(name: str, factory: Callable, *,
                       kind: str = "iohooks",
                       flows: Tuple[str, ...] = ("simple",
                                                 "connection-first"),
                       description: str = "",
                       replace: bool = False) -> SchedulerBackend:
    """Register a scheduler backend under ``name``.

    The name immediately becomes a valid ``SynthesisOptions.scheduler``
    value, ``repro synthesize --scheduler`` choice, explorer
    ``scheduler`` axis value, and differential-oracle participant for
    the flows it supports.  Re-registering an existing name requires
    ``replace=True`` (guards against accidental shadowing).
    """
    if name in _SCHEDULERS and not replace:
        raise ValueError(
            f"scheduler {name!r} is already registered "
            f"(pass replace=True to override)")
    if name in DEPRECATED_SCHEDULER_ALIASES:
        raise ValueError(
            f"{name!r} is a deprecated alias of "
            f"{DEPRECATED_SCHEDULER_ALIASES[name]!r}; register the "
            f"canonical name instead")
    backend = SchedulerBackend(name=name, factory=factory, kind=kind,
                               flows=tuple(flows),
                               description=description)
    _SCHEDULERS[name] = backend
    return backend


def scheduler_backend(name: str) -> Optional[SchedulerBackend]:
    """The backend registered under ``name`` (``None`` if absent)."""
    return _SCHEDULERS.get(name)


def scheduler_names(flow: Optional[str] = None) -> List[str]:
    """Registered backend names, optionally only those a flow accepts."""
    names = [name for name, backend in _SCHEDULERS.items()
             if flow is None or flow in backend.flows]
    return sorted(names)


def resolve_scheduler(name: str, diag=None) -> str:
    """Canonicalize a scheduler spelling.

    Deprecated aliases map to their registry names; when a
    diagnostics trail is given the substitution is recorded as a
    warning so degraded-compat spellings are auditable.  Unknown
    names pass through (the flow's validation pass rejects them).
    """
    canonical = DEPRECATED_SCHEDULER_ALIASES.get(name, name)
    if canonical != name and diag is not None:
        diag.record("scheduler", "deprecated_alias",
                    alias=name, canonical=canonical)
    return canonical


# -- built-in backends -------------------------------------------------
def _run_list(graph, timing, rate, resources, hooks_factory, budget,
              diagnostics):
    from repro.scheduling.list_scheduler import ListScheduler
    return ListScheduler(graph, timing, rate, resources,
                         io_hooks=hooks_factory(), budget=budget).run()


def _run_heap(graph, timing, rate, resources, hooks_factory, budget,
              diagnostics):
    from repro.scheduling.heap_list import HeapListScheduler
    return HeapListScheduler(graph, timing, rate, resources,
                             io_hooks=hooks_factory(),
                             budget=budget).run()


def _run_postpone(graph, timing, rate, resources, hooks_factory,
                  budget, diagnostics):
    from repro.scheduling.postpone import schedule_with_postponement
    return schedule_with_postponement(graph, timing, rate, resources,
                                      hooks_factory=hooks_factory,
                                      budget=budget)


def _run_modulo(graph, timing, rate, resources, hooks_factory, budget,
                diagnostics):
    from repro.scheduling.modulo import ModuloScheduler
    return ModuloScheduler(graph, timing, rate, resources,
                           hooks_factory=hooks_factory, budget=budget,
                           diagnostics=diagnostics).run()


def _run_fds(graph, timing, rate, pipe_length, budget, diagnostics):
    from repro.scheduling.fds import ForceDirectedScheduler
    return ForceDirectedScheduler(graph, timing, rate, pipe_length,
                                  budget=budget).run()


register_scheduler(
    "list", _run_list,
    description="per-step priority list scheduling (Figure 3.4)")
register_scheduler(
    "heap", _run_heap,
    description="heap-driven ready list keyed by step/deadline/"
                "criticality")
register_scheduler(
    "postpone", _run_postpone, kind="rounds",
    flows=("connection-first",),
    description="list scheduling with iterative postponement rounds")
register_scheduler(
    "modulo", _run_modulo,
    description="IMS modulo placement at II=L, legalized by list "
                "scheduling")
register_scheduler(
    "fds", _run_fds, kind="time", flows=("schedule-first",),
    description="time-constrained force-directed scheduling "
                "(Section 5.2)")


# ---------------------------------------------------------------------
# Flow specs
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class FlowSpec:
    """One chapter flow as a declarative pass list."""

    name: str
    perf_phase: str
    setup: Tuple[P.Pass, ...]
    phased: Tuple[P.Pass, ...]
    finish: Tuple[P.Pass, ...]

    def pass_names(self) -> List[str]:
        return [p.name for p in
                (*self.setup, *self.phased, *self.finish)]


_FLOW_SPECS: Dict[str, FlowSpec] = {}


def register_flow(spec: FlowSpec, replace: bool = False) -> FlowSpec:
    if spec.name in _FLOW_SPECS and not replace:
        raise ValueError(
            f"flow {spec.name!r} is already registered "
            f"(pass replace=True to override)")
    _FLOW_SPECS[spec.name] = spec
    return spec


def flow_spec(name: str) -> FlowSpec:
    try:
        return _FLOW_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown flow {name!r}; registered: "
            f"{sorted(_FLOW_SPECS)}") from None


def registered_flows() -> List[str]:
    return sorted(_FLOW_SPECS)


register_flow(FlowSpec(
    name="simple",
    perf_phase="flow.simple",
    setup=(P.ValidateDesign(), P.RequireSimplePartitioning(),
           P.BuildResourceTable(), P.ValidateScheduler("simple")),
    phased=(P.SchedulePinChecked(), P.ConnectSimple()),
    finish=(P.BuildSimpleResult(), P.VerifyResult()),
))

register_flow(FlowSpec(
    name="connection-first",
    perf_phase="flow.connection_first",
    setup=(P.ValidateDesign(), P.BuildResourceTable(),
           P.ResolveShareGroups(),
           P.ValidateScheduler("connection-first")),
    phased=(P.SearchConnections(), P.ScheduleBusAllocated()),
    finish=(P.BuildConnectionFirstResult(), P.VerifyResult()),
))

register_flow(FlowSpec(
    name="schedule-first",
    perf_phase="flow.schedule_first",
    setup=(P.ValidateDesign(), P.ResolvePipeLength(),
           P.BuildResourceTable(default_modules=False)),
    phased=(P.ScheduleForceDirected(), P.ConnectPostSchedule()),
    finish=(P.MeasureResources(), P.BuildScheduleFirstResult(),
            P.VerifyTolerantPins(), P.VerifyStrictOnFallback()),
))


#: The uniform ``check=True`` pass appended to every flow.
_CHECK_PASS = P.CheckRules()


# ---------------------------------------------------------------------
def _pass_boundary(ctx: FlowContext, p) -> None:
    """Uniform per-pass budget gate: the wall clock is consulted at
    every pass boundary (deadline only — iteration caps belong to the
    solvers' own ticks, so capped runs stay deterministic)."""
    if ctx.token is not None:
        ctx.token.check(f"pass.{p.name}")


def run_flow(name: str, ctx: FlowContext):
    """Execute a registered flow's pass list over ``ctx``.

    Setup passes run first; the phased passes run under the flow's
    PERF phase with the stats baseline snapshotted in between (so
    every flow reports solver effort identically); finish passes
    assemble and verify the result.  ``ctx.check`` appends the
    unified design-rule checker as the final boundary.
    """
    spec = flow_spec(name)

    def run_pass(p) -> None:
        _pass_boundary(ctx, p)
        with TRACER.span(f"pass.{p.name}", layer="pipeline"):
            p.run(ctx)

    for p in spec.setup:
        run_pass(p)
    ctx.perf_before = PERF.snapshot()
    # The flow's PERF phase doubles as a pipeline-layer span via the
    # perf phase hook, so the pass spans below nest under it.
    with PERF.phase(spec.perf_phase):
        for p in spec.phased:
            run_pass(p)
    for p in spec.finish:
        run_pass(p)
    if ctx.check:
        run_pass(_CHECK_PASS)
    return ctx.result
