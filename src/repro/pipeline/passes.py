"""Concrete passes composing the three chapter flows.

Each pass is a small named object with a ``run(ctx)`` method over a
:class:`repro.pipeline.context.FlowContext`; the registry strings them
into per-flow pass lists (see :mod:`repro.pipeline.registry`).  The
pass bodies are the exact phase bodies of the historical monolithic
flow functions — the refactor moved the sequencing out, not the
semantics — so a registry-dispatched run is byte-identical to the old
bespoke call path.

Scheduling passes resolve ``options.scheduler`` against the backend
registry, so new backends (heap-driven list scheduling, modulo
scheduling) plug into the Chapter 3 and Chapter 4/6 flows without any
flow-specific wiring.
"""

from __future__ import annotations

from typing import List, Protocol

from repro.cdfg.validate import validate_cdfg
from repro.core.bus_assignment import BusAllocator
from repro.core.connection_search import ConnectionSearch
from repro.core.pin_allocation import PinAllocationChecker
from repro.core.post_sched import PostScheduleConnector
from repro.core.simple_connection import build_simple_connection
from repro.core.subbus import SubBusConnectionSearch
from repro.errors import ConnectionError_, SchedulingError
from repro.partition.simple import is_simple_partitioning
from repro.pipeline.context import FlowContext, normalized_stats
from repro.pipeline.resource_table import ResourceTable
from repro.scheduling.base import measured_resources


class Pass(Protocol):
    """One step of a flow: consumes and produces a FlowContext."""

    name: str

    def run(self, ctx: FlowContext) -> None:
        """Read inputs and earlier products off ``ctx``, write own."""


# ---------------------------------------------------------------------
# Shared setup passes
# ---------------------------------------------------------------------
class ValidateDesign:
    """CDFG well-formedness (every flow's first gate)."""

    name = "validate"

    def run(self, ctx: FlowContext) -> None:
        validate_cdfg(ctx.graph, require_partitions=False)


class RequireSimplePartitioning:
    """Chapter 3 applies only to simple partitionings (Def 3.2)."""

    name = "require-simple"

    def run(self, ctx: FlowContext) -> None:
        if not is_simple_partitioning(ctx.graph):
            raise ConnectionError_(
                "synthesize_simple requires a simple partitioning "
                "(Definition 3.2); use synthesize_connection_first "
                "instead")


class BuildResourceTable:
    """Create the run's :class:`ResourceTable`; module counts default
    to the rate-feasible minimum when the caller gave none."""

    name = "resource-table"

    def __init__(self, default_modules: bool = True) -> None:
        self.default_modules = default_modules

    def run(self, ctx: FlowContext) -> None:
        ctx.table = ResourceTable(ctx.graph, ctx.partitioning,
                                  ctx.timing, ctx.initiation_rate,
                                  modules=ctx.options.resources)
        if self.default_modules:
            ctx.table.modules  # resolve eagerly, before the PERF phase


class ResolveShareGroups:
    """Section 7.2 conditional sharing (connection-first setup)."""

    name = "share-groups"

    def run(self, ctx: FlowContext) -> None:
        opts = ctx.options
        share_groups = opts.share_groups
        if opts.conditional_sharing:
            if share_groups is not None:
                raise ConnectionError_(
                    "give either explicit share_groups or "
                    "conditional_sharing=True, not both")
            from repro.cdfg.analysis import critical_path_length
            from repro.core.conditional import share_conditionally
            pipe_budget = critical_path_length(ctx.graph, ctx.timing) \
                + 2 * ctx.initiation_rate
            sharing = share_conditionally(
                ctx.graph, ctx.timing, pipe_budget,
                initiation_rate=ctx.initiation_rate)
            share_groups = sharing.share_groups()
        ctx.share_groups = share_groups


class ValidateScheduler:
    """Resolve ``options.scheduler`` against the backend registry for
    this flow; deprecated spellings canonicalize with a diagnostics
    warning, unknown or inapplicable names fail fast."""

    name = "validate-scheduler"

    def __init__(self, flow: str) -> None:
        self.flow = flow

    def run(self, ctx: FlowContext) -> None:
        from repro.pipeline.registry import (resolve_scheduler,
                                             scheduler_backend)
        resolved = resolve_scheduler(ctx.options.scheduler,
                                     diag=ctx.diag)
        backend = scheduler_backend(resolved)
        if backend is None:
            raise SchedulingError(
                f"unknown scheduler {ctx.options.scheduler!r}")
        if self.flow not in backend.flows:
            raise SchedulingError(
                f"scheduler {resolved!r} is not available in the "
                f"{self.flow} flow (supports: "
                f"{', '.join(backend.flows)})")
        ctx.stats_extra["_scheduler"] = resolved


def _resolved_backend(ctx: FlowContext, flow: str):
    from repro.pipeline.registry import (resolve_scheduler,
                                         scheduler_backend)
    name = ctx.stats_extra.pop("_scheduler", None)
    if name is None:
        name = resolve_scheduler(ctx.options.scheduler)
    return scheduler_backend(name)


# ---------------------------------------------------------------------
# Chapter 3 (simple) passes
# ---------------------------------------------------------------------
class SchedulePinChecked:
    """List scheduling gated by the ILP pin-allocation checker.

    The selected backend draws its functional-unit pool from the
    resource table and its I/O feasibility from a fresh
    :class:`PinAllocationChecker`; backends that retry (modulo) get a
    fresh checker per attempt, and the last one speaks for the run.
    """

    name = "schedule"

    def run(self, ctx: FlowContext) -> None:
        backend = _resolved_backend(ctx, "simple")
        opts = ctx.options
        created: List[PinAllocationChecker] = []

        def hooks_factory():
            checker = PinAllocationChecker(
                ctx.graph, ctx.partitioning, ctx.initiation_rate,
                method=opts.pin_method, budget=ctx.token,
                diagnostics=ctx.diag, warm_basis=ctx.warm_basis)
            created.append(checker)
            return checker

        ctx.schedule = backend.run_scheduler(
            ctx.graph, ctx.timing, ctx.initiation_rate,
            ctx.table.modules, hooks_factory, ctx.token, ctx.diag)
        ctx.checker = created[-1]
        ctx.checker.finalize()


class ConnectSimple:
    """Theorem 3.1 constructive interchip connection."""

    name = "simple-connect"

    def run(self, ctx: FlowContext) -> None:
        ctx.simple_allocation = build_simple_connection(ctx.graph,
                                                        ctx.schedule)


class BuildSimpleResult:
    """Assemble the Chapter 3 :class:`SynthesisResult`."""

    name = "build-result"

    def run(self, ctx: FlowContext) -> None:
        from repro.core.flow import SynthesisResult
        checker = ctx.checker
        ctx.result = SynthesisResult(
            graph=ctx.graph,
            partitioning=ctx.partitioning,
            initiation_rate=ctx.initiation_rate,
            schedule=ctx.schedule,
            resources=ctx.table.modules,
            simple_allocation=ctx.simple_allocation,
            stats=normalized_stats(ctx.perf_before,
                                   pin_checks=checker.checks,
                                   pin_cache_hits=checker.cache_hits,
                                   pin_store_hits=checker.store_hits),
            diagnostics=ctx.diag,
            warm_basis=checker.export_warm_basis(),
        )


# ---------------------------------------------------------------------
# Chapter 4/6 (connection-first) passes
# ---------------------------------------------------------------------
class SearchConnections:
    """Heuristic connection synthesis before scheduling (Fig 4.3)."""

    name = "connect-search"

    def run(self, ctx: FlowContext) -> None:
        opts = ctx.options
        search_cls = SubBusConnectionSearch if opts.subbus_sharing \
            else ConnectionSearch
        search = search_cls(ctx.graph, ctx.partitioning,
                            ctx.initiation_rate,
                            branching_factor=opts.branching_factor,
                            share_groups=ctx.share_groups,
                            slot_reserve=opts.slot_reserve,
                            budget=ctx.token)
        ctx.interconnect, ctx.initial = search.run()


class ScheduleBusAllocated:
    """Scheduling with dynamic bus (re)assignment hooks.

    Every backend receives a factory producing fresh
    :class:`BusAllocator` hooks over the searched interconnect; the
    postponement backend consumes several across its rounds, the
    others exactly one.  The last allocator's assignment is final.
    """

    name = "schedule"

    def run(self, ctx: FlowContext) -> None:
        backend = _resolved_backend(ctx, "connection-first")
        opts = ctx.options
        created: List[BusAllocator] = []
        fresh_copy = backend.name == "postpone"

        def hooks_factory():
            initial = ctx.initial.copy() if fresh_copy else ctx.initial
            allocator = BusAllocator(ctx.graph, ctx.interconnect,
                                     initial, ctx.initiation_rate,
                                     reassignment=opts.reassignment)
            created.append(allocator)
            return allocator

        ctx.schedule = backend.run_scheduler(
            ctx.graph, ctx.timing, ctx.initiation_rate,
            ctx.table.modules, hooks_factory, ctx.token, ctx.diag)
        ctx.allocator = created[-1]


class BuildConnectionFirstResult:
    """Assemble the Chapter 4/6 :class:`SynthesisResult`."""

    name = "build-result"

    def run(self, ctx: FlowContext) -> None:
        from repro.core.flow import SynthesisResult
        ctx.result = SynthesisResult(
            graph=ctx.graph,
            partitioning=ctx.partitioning,
            initiation_rate=ctx.initiation_rate,
            schedule=ctx.schedule,
            resources=ctx.table.modules,
            interconnect=ctx.interconnect,
            assignment=ctx.allocator.final_assignment(),
            stats=normalized_stats(ctx.perf_before,
                                   initial_assignment=ctx.initial),
            diagnostics=ctx.diag,
        )


# ---------------------------------------------------------------------
# Chapter 5 (schedule-first) passes
# ---------------------------------------------------------------------
class ResolvePipeLength:
    """Bidirectional default + pipe budget for FDS runs without one."""

    name = "pipe-length"

    def run(self, ctx: FlowContext) -> None:
        bidirectional = ctx.options.bidirectional
        if bidirectional is None:
            bidirectional = ctx.partitioning.any_bidirectional()
        ctx.stats_extra["_bidirectional"] = bidirectional
        if ctx.pipe_length is None:
            ctx.pipe_length = ctx.options.pipe_length
        if ctx.pipe_length is None:
            from repro.core.flow import _default_pipe_length
            ctx.pipe_length = _default_pipe_length(
                ctx.graph, ctx.timing, ctx.initiation_rate)


class ScheduleForceDirected:
    """Time-constrained force-directed scheduling (Section 5.2)."""

    name = "schedule"

    def run(self, ctx: FlowContext) -> None:
        from repro.pipeline.registry import scheduler_backend
        backend = scheduler_backend("fds")
        ctx.schedule = backend.run_time_scheduler(
            ctx.graph, ctx.timing, ctx.initiation_rate,
            ctx.pipe_length, ctx.token, ctx.diag)


class ConnectPostSchedule:
    """Clique-partitioning connection synthesis after scheduling."""

    name = "post-connect"

    def run(self, ctx: FlowContext) -> None:
        connector = PostScheduleConnector(
            ctx.graph, ctx.schedule, partitioning=None,
            bidirectional=ctx.stats_extra.pop("_bidirectional"))
        ctx.interconnect, ctx.assignment = connector.run()


class MeasureResources:
    """Module usage is an output of the Chapter 5 flow, not an input."""

    name = "measure-resources"

    def run(self, ctx: FlowContext) -> None:
        ctx.table.set_modules(measured_resources(ctx.schedule))


class BuildScheduleFirstResult:
    """Assemble the Chapter 5 :class:`SynthesisResult`."""

    name = "build-result"

    def run(self, ctx: FlowContext) -> None:
        from repro.core.flow import SynthesisResult
        ctx.result = SynthesisResult(
            graph=ctx.graph,
            partitioning=ctx.partitioning,
            initiation_rate=ctx.initiation_rate,
            schedule=ctx.schedule,
            resources=ctx.table.modules,
            interconnect=ctx.interconnect,
            assignment=ctx.assignment,
            stats=normalized_stats(ctx.perf_before),
            diagnostics=ctx.diag,
        )


# ---------------------------------------------------------------------
# Verification passes
# ---------------------------------------------------------------------
class VerifyResult:
    """Strict end-to-end verification (``require_valid``)."""

    name = "verify"

    def run(self, ctx: FlowContext) -> None:
        ctx.result.require_valid()


class VerifyTolerantPins:
    """Chapter 5 verification: the flow minimizes pins rather than
    respecting a fixed budget, so overruns are reported, not fatal —
    unless the run is a degradation fallback (``strict_verify``)."""

    name = "verify-tolerant"

    def run(self, ctx: FlowContext) -> None:
        result = ctx.result
        problems = result.verify()
        hard = [p for p in problems if "budget" not in p]
        if hard:
            raise SchedulingError(
                "schedule-first synthesis failed verification:\n  "
                + "\n  ".join(hard))
        overruns = [p for p in problems if "budget" in p]
        result.stats["budget_overruns"] = overruns
        if overruns:
            ctx.diag.record("schedule_first", "pin_budget_overruns",
                            count=len(overruns))


class VerifyStrictOnFallback:
    """Degradation rungs answer for the flow they replaced: a
    schedule-first result reached by fallback must verify exactly like
    a full-effort one — including pin budgets, which the standalone
    Chapter 5 flow merely reports on."""

    name = "verify-strict"

    def run(self, ctx: FlowContext) -> None:
        if ctx.strict_verify:
            ctx.result.require_valid()


class CheckRules:
    """The unified design-rule checker as a uniform final pass
    (``synthesize(check=True)``); raises on any violation."""

    name = "check"

    def run(self, ctx: FlowContext) -> None:
        # Imported here: repro.check is a layer above the flows.
        from repro.check.rules import check_result
        check_result(ctx.result).raise_if_violations()
