"""The unified per-chip module/pin accounting behind every flow.

Before the pass pipeline, three modules each kept their own copy of
the same bookkeeping: :mod:`repro.core.flow` defaulted module counts
and re-measured them, :class:`repro.core.connection_search.ConnectionSearch`
tracked booked pins per chip (with the fixed input/output split), and
:mod:`repro.core.pin_allocation` re-derived the very same per-chip
limits when building ILP rows and witness vectors.  This module owns
that accounting once:

* :func:`pin_caps` — a chip's effective (total, output, input) pin
  limits under its port model;
* :func:`fits` — the single feasibility predicate ("does this usage
  fit this chip?") shared by the search, the checker rows, and the
  design-rule checker;
* :func:`usage_row` — the canonical 3-slot encoding of a chip's pin
  usage used by the pin-oracle witness vectors;
* :class:`PinLedger` — a mutable booked-pins table with delta checks,
  booking, snapshot/restore (the connection search's inner loop), and
  budget-violation reporting (``Interconnect.check_budget``);
* :class:`ResourceTable` — the pass-pipeline facade combining the pin
  ledger with functional-module accounting (defaulting via
  :func:`repro.modules.allocation.min_module_counts`, occupancy via
  :class:`repro.scheduling.base.ResourcePool`).

Scheduler backends draw their :class:`ResourcePool` from the table, so
any schedule they emit is accounted against the same module vector the
rest of the flow (and the design-rule checker) sees.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.modules.allocation import ResourceVector, min_module_counts
from repro.partition.model import ChipSpec, Partitioning
from repro.scheduling.base import ResourcePool

#: Snapshot of a :class:`PinLedger`: (used, out, in) dict copies.
LedgerSnapshot = Tuple[Dict[int, int], Dict[int, int], Dict[int, int]]


def pin_caps(spec: ChipSpec) -> Tuple[int, Optional[int], Optional[int]]:
    """A chip's effective pin limits: ``(total, out_cap, in_cap)``.

    Pooled chips bound only the total (``None`` per side — any split
    is allowed); split-fixed chips additionally cap each direction.
    """
    if spec.split_fixed:
        return spec.total_pins, spec.output_pins, spec.input_pins
    return spec.total_pins, None, None


def fits(spec: ChipSpec, out_used: int, in_used: int) -> bool:
    """Whether ``out_used``/``in_used`` pins fit the chip's budget.

    The single feasibility predicate: total pool always applies;
    per-side caps apply only when the chip declares a fixed split.
    """
    total, out_cap, in_cap = pin_caps(spec)
    if out_used + in_used > total:
        return False
    if out_cap is not None and out_used > out_cap:
        return False
    if in_cap is not None and in_used > in_cap:
        return False
    return True


def usage_row(spec: ChipSpec, in_use: int, out_use: int) -> List[int]:
    """Canonical 3-slot usage encoding for pin-oracle witness vectors.

    Mirrors the ILP rows exactly: split-fixed chips bound each side
    separately and never reference the total, pooled chips bound only
    ``in + out <= total``.  Slots the model never bounds come back as
    ``0``/``-1`` so they never block a transfer.
    """
    if spec.split_fixed:
        return [0, in_use, out_use]
    return [in_use + out_use, -1, -1]


class PinLedger:
    """Booked pins per chip, with delta checks and cheap undo.

    The mutable half of the pin accounting: the connection search books
    candidate placements and rolls them back on backtrack; the checker
    reports violations of a finished interconnect through the same
    arithmetic.  Usage is direction-split (out/in); bidirectional
    widths are booked on the out side of the pooled tracker, matching
    the historical convention everywhere in the code base.
    """

    def __init__(self, partitioning: Partitioning) -> None:
        self.partitioning = partitioning
        self.used: Dict[int, int] = {
            index: 0 for index in partitioning.indices()}
        self.out_used: Dict[int, int] = {
            index: 0 for index in partitioning.indices()}
        self.in_used: Dict[int, int] = {
            index: 0 for index in partitioning.indices()}

    # ------------------------------------------------------------------
    @classmethod
    def from_interconnect(cls, interconnect,
                          partitioning: Partitioning) -> "PinLedger":
        """Ledger reflecting a finished interconnect's pin usage."""
        ledger = cls(partitioning)
        for index in partitioning.indices():
            out_used, in_used = interconnect.pins_used_split(index)
            ledger.used[index] = out_used + in_used
            ledger.out_used[index] = out_used
            ledger.in_used[index] = in_used
        return ledger

    # ------------------------------------------------------------------
    def free_pins(self, partition: int) -> int:
        """Unbooked pins of the chip's total pool."""
        return (self.partitioning.total_pins(partition)
                - self.used[partition])

    def delta_fits(self,
                   delta: Mapping[int, Tuple[int, int]]) -> bool:
        """Whether booking ``{chip: (extra_out, extra_in)}`` fits every
        touched chip's budget — the total pool, and the fixed split
        when one is declared."""
        for partition, (extra_out, extra_in) in delta.items():
            spec = self.partitioning.chip(partition)
            if not fits(spec,
                        self.out_used[partition] + extra_out,
                        self.in_used[partition] + extra_in):
                return False
        return True

    def book(self, delta: Mapping[int, Tuple[int, int]]) -> None:
        """Record the extra pins (no feasibility check — callers gate
        with :meth:`delta_fits` first)."""
        for partition, (extra_out, extra_in) in delta.items():
            self.used[partition] += extra_out + extra_in
            self.out_used[partition] += extra_out
            self.in_used[partition] += extra_in

    # ------------------------------------------------------------------
    def snapshot(self) -> LedgerSnapshot:
        return dict(self.used), dict(self.out_used), dict(self.in_used)

    def restore(self, snap: LedgerSnapshot) -> None:
        self.used, self.out_used, self.in_used = snap

    # ------------------------------------------------------------------
    def violations(self) -> List[str]:
        """Budget-violation report, one string per broken limit.

        The message format is the stable contract of
        ``Interconnect.check_budget`` (tests and the design-rule
        checker match on it).
        """
        problems: List[str] = []
        for index in self.partitioning.indices():
            used = self.used[index]
            budget = self.partitioning.total_pins(index)
            if used > budget:
                problems.append(
                    f"partition {index} uses {used} pins "
                    f"(> budget {budget})")
            spec = self.partitioning.chip(index)
            if spec.split_fixed:
                out_used, in_used = (self.out_used[index],
                                     self.in_used[index])
                if out_used > spec.output_pins:
                    problems.append(
                        f"partition {index} uses {out_used} output "
                        f"pins (> output-pin budget "
                        f"{spec.output_pins})")
                if in_used > spec.input_pins:
                    problems.append(
                        f"partition {index} uses {in_used} input "
                        f"pins (> input-pin budget {spec.input_pins})")
        return problems


class ResourceTable:
    """Per-chip module *and* pin accounting for one synthesis run.

    The pass pipeline builds one table per flow invocation and hands
    it to every pass: resource defaulting, the connection search's pin
    ledger, and the scheduler backends' functional-unit pools all read
    and write the same object, so no pass can disagree with another
    about what a chip has left.
    """

    def __init__(self, graph, partitioning: Partitioning, timing,
                 initiation_rate: int,
                 modules: Optional[ResourceVector] = None) -> None:
        self.graph = graph
        self.partitioning = partitioning
        self.timing = timing
        self.initiation_rate = initiation_rate
        self._modules: Optional[ResourceVector] = (
            dict(modules) if modules is not None else None)
        self.pins = PinLedger(partitioning)

    # ------------------------------------------------------------------
    @property
    def modules(self) -> ResourceVector:
        """The module vector, defaulted lazily to the rate-feasible
        minimum (:func:`min_module_counts`) when none was given."""
        if self._modules is None:
            self._modules = min_module_counts(
                self.graph, self.timing, self.initiation_rate)
        return self._modules

    def set_modules(self, modules: ResourceVector) -> None:
        """Fix the module vector (the schedule-first flow *measures*
        module usage from the finished schedule rather than taking it
        as an input)."""
        self._modules = dict(modules)

    def module_pool(self) -> ResourcePool:
        """A fresh functional-unit occupancy pool over the table's
        module vector — what scheduler backends place against."""
        return ResourcePool(self.modules, self.timing,
                            self.initiation_rate)
