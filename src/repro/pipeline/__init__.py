"""The pass-pipeline API: typed flow state, declarative flows,
pluggable scheduler backends.

* :class:`FlowContext` — the typed state every pass consumes and
  produces (:mod:`repro.pipeline.context`);
* :class:`ResourceTable` / :class:`PinLedger` — the unified per-chip
  module and pin accounting (:mod:`repro.pipeline.resource_table`);
* :mod:`repro.pipeline.passes` — the concrete passes the three
  chapter flows are composed from;
* :mod:`repro.pipeline.registry` — the flow registry
  (:class:`FlowSpec`, :func:`run_flow`) and the scheduler backend
  registry (:func:`register_scheduler`, :func:`scheduler_names`).

Third-party scheduler registration (see docs/api.md)::

    from repro.pipeline import register_scheduler

    def my_backend(graph, timing, rate, resources, hooks_factory,
                   budget, diagnostics):
        ...  # return a finished repro.scheduling.base.Schedule

    register_scheduler("mine", my_backend,
                       flows=("simple", "connection-first"))

The name is then a valid ``SynthesisOptions.scheduler`` value, CLI
``--scheduler`` choice, explorer axis value, and differential-oracle
participant.
"""

from repro.pipeline.context import (FlowContext, STAT_COUNTERS,
                                    normalized_stats)
from repro.pipeline.resource_table import (PinLedger, ResourceTable,
                                           fits, pin_caps, usage_row)
from repro.pipeline.registry import (DEPRECATED_SCHEDULER_ALIASES,
                                     FlowSpec, SchedulerBackend,
                                     flow_spec, register_flow,
                                     register_scheduler,
                                     registered_flows,
                                     resolve_scheduler, run_flow,
                                     scheduler_backend,
                                     scheduler_names)

__all__ = [
    "FlowContext",
    "STAT_COUNTERS",
    "normalized_stats",
    "PinLedger",
    "ResourceTable",
    "fits",
    "pin_caps",
    "usage_row",
    "DEPRECATED_SCHEDULER_ALIASES",
    "FlowSpec",
    "SchedulerBackend",
    "flow_spec",
    "register_flow",
    "register_scheduler",
    "registered_flows",
    "resolve_scheduler",
    "run_flow",
    "scheduler_backend",
    "scheduler_names",
]
