"""The typed state every pass consumes and produces.

A :class:`FlowContext` is created once per flow invocation by
:func:`repro.pipeline.registry.run_flow` and threaded through the
flow's pass list.  Inputs (graph, partitioning, timing, rate, options,
budget token, diagnostics, warm-start basis) are filled by the caller;
products (resource table, interconnect, schedule, assignment, the
finished :class:`repro.core.flow.SynthesisResult`) are filled by
passes as they run.  A pass communicates with its successors only
through the context — that is what makes the pass lists declarative
and lets backends plug in without touching the flow code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.perf import PERF
from repro.pipeline.resource_table import ResourceTable

#: PERF counter deltas reported under the same stats key by ALL flows,
#: so callers can diff effort across flows without key juggling.
STAT_COUNTERS = {
    "pin_checks": "pin.checks",
    "pin_cache_hits": "pin.cache_hits",
    "pin_cache_misses": "pin.cache_misses",
    "pin_store_hits": "pin.store_hits",
    "tableau_pivots": "tableau.pivots",
    "gomory_cuts": "gomory.cuts",
    "simplex_solves": "simplex.solves",
    "bnb_nodes": "bnb.nodes",
    "search_steps": "search.steps",
    "reassignments": "bus.reassignments",
}


def normalized_stats(before, **extra) -> Dict[str, float]:
    """The cross-flow stats contract: counter deltas + flow extras.

    Every flow reports the solver-effort counters (zero when a solver
    was not exercised) — including ``search_steps``/``reassignments``,
    which the chapter-4/5 engines tick as PERF counters — so the key
    set is identical across flows; flow-specific extras ride along.
    """
    counters = PERF.delta_since(before)["counters"]
    stats: Dict[str, float] = {
        key: counters.get(counter, 0)
        for key, counter in STAT_COUNTERS.items()
    }
    stats.update(extra)
    return stats


@dataclass
class FlowContext:
    """Everything one flow invocation reads and produces.

    ``options`` is a :class:`repro.core.flow.SynthesisOptions`;
    ``token`` a started :class:`repro.robustness.budget.BudgetToken`
    (or ``None``); ``diag`` the run's diagnostics trail.  The
    remaining fields are pass products, ``None`` until the producing
    pass has run.
    """

    # --- inputs -------------------------------------------------------
    graph: Any
    partitioning: Any
    timing: Any
    initiation_rate: int
    options: Any
    token: Any = None
    diag: Any = None
    warm_basis: Any = None
    #: Run the unified design-rule checker as a final pass.
    check: bool = False
    #: Set by the dispatcher's degradation chain: a fallback rung must
    #: verify strictly (pin budgets included) before it may answer.
    strict_verify: bool = False

    # --- pass products ------------------------------------------------
    table: Optional[ResourceTable] = None
    share_groups: Any = None
    pipe_length: Optional[int] = None
    interconnect: Any = None
    initial: Any = None          # initial BusAssignment from the search
    checker: Any = None          # PinAllocationChecker (simple flow)
    allocator: Any = None        # BusAllocator (connection-first flow)
    schedule: Any = None
    assignment: Any = None
    simple_allocation: Any = None
    stats_extra: Dict[str, Any] = field(default_factory=dict)
    perf_before: Any = None      # PERF snapshot from the flow runner
    result: Any = None           # the finished SynthesisResult

    # ------------------------------------------------------------------
    @property
    def resources(self):
        """The run's module vector (via the resource table)."""
        return self.table.modules if self.table is not None else None
