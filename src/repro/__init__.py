"""repro — pin-constrained high-level synthesis for multi-chip designs.

A from-scratch reproduction of Yung-Hua Hung, *"High-Level Synthesis
with Pin Constraints for Multiple-Chip Designs"* (USC, 1992; DAC'92):
data-path synthesis for synchronous multi-chip pipelined systems from
partitioned CDFGs, under per-chip I/O pin budgets and with passive
(switch-free) interchip buses.

Quickstart::

    from repro import CdfgBuilder, Partitioning, ChipSpec, synthesize
    from repro.modules.library import ar_filter_timing
    from repro.robustness import SolveBudget

    # build a partitioned CDFG with I/O nodes, pick pin budgets...
    result = synthesize(graph, partitioning, ar_filter_timing(), 3,
                        budget=SolveBudget(deadline_ms=2000))
    print(result.pipe_length, result.pins_used(), result.degraded)

:func:`synthesize` dispatches to the right chapter flow, threads the
budget through every solver, and degrades gracefully when time runs
out — ``result.diagnostics`` records the fallback trail.  The three
per-chapter functions (:func:`synthesize_simple`,
:func:`synthesize_connection_first`, :func:`synthesize_schedule_first`)
remain available for direct control.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.cdfg import Cdfg, CdfgBuilder, Node, Edge, OpKind
from repro.partition import ChipSpec, Partitioning, OUTSIDE_WORLD
from repro.modules import (HardwareModule, ModuleSet, DesignTiming,
                           ar_filter_timing, elliptic_filter_timing)
from repro.core import (
    Bus,
    Interconnect,
    BusAssignment,
    SynthesisOptions,
    SynthesisResult,
    synthesize,
    synthesize_simple,
    synthesize_connection_first,
    synthesize_schedule_first,
)
from repro.robustness import (BudgetExhausted, Diagnostics, SolveBudget)
from repro.scheduling import Schedule, ListScheduler, ForceDirectedScheduler
from repro.explore import (DesignSpace, Executor, ResultCache,
                           SweepSpec, pareto_front)
from repro.check import (CheckReport, Violation, check_result, fuzz,
                         run_differential)

__version__ = "1.0.0"

__all__ = [
    "Cdfg",
    "CdfgBuilder",
    "Node",
    "Edge",
    "OpKind",
    "ChipSpec",
    "Partitioning",
    "OUTSIDE_WORLD",
    "HardwareModule",
    "ModuleSet",
    "DesignTiming",
    "ar_filter_timing",
    "elliptic_filter_timing",
    "Bus",
    "Interconnect",
    "BusAssignment",
    "SynthesisOptions",
    "SynthesisResult",
    "SolveBudget",
    "BudgetExhausted",
    "Diagnostics",
    "synthesize",
    "synthesize_simple",
    "synthesize_connection_first",
    "synthesize_schedule_first",
    "Schedule",
    "ListScheduler",
    "ForceDirectedScheduler",
    "DesignSpace",
    "SweepSpec",
    "Executor",
    "ResultCache",
    "pareto_front",
    "CheckReport",
    "Violation",
    "check_result",
    "fuzz",
    "run_differential",
    "__version__",
]
