"""Maximum-cardinality bipartite matching with incremental augmentation.

The matcher is deliberately *incremental*: the Chapter 4 scheduler adds
one I/O operation at a time and asks whether the assignment can be
extended, possibly preempting (reassigning) earlier tentative
assignments along an augmenting path — which is the textbook augmenting
path search, so that is literally what runs here.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set

Left = Hashable
Right = Hashable


class BipartiteMatcher:
    """Incremental matching between ``left`` items and ``right`` slots.

    ``neighbors(u)`` yields the right-side slots item ``u`` may use.
    ``pinned`` right slots cannot be taken away from their current item
    (used for I/O operations already *scheduled* on a bus slot, whose
    assignment is fixed — the shaded edges of Figure 4.5).
    """

    def __init__(self,
                 neighbors: Callable[[Left], Iterable[Right]]) -> None:
        self._neighbors = neighbors
        self.match_of_left: Dict[Left, Right] = {}
        self.match_of_right: Dict[Right, Left] = {}
        self._pinned: Set[Right] = set()

    # ------------------------------------------------------------------
    def pin(self, right: Right) -> None:
        """Freeze the current occupant of a right slot."""
        if right not in self.match_of_right:
            raise KeyError(f"cannot pin unmatched slot {right!r}")
        self._pinned.add(right)

    def unpin(self, right: Right) -> None:
        self._pinned.discard(right)

    def assign(self, left: Left, right: Right) -> None:
        """Force an assignment (caller guarantees the slot is free)."""
        if right in self.match_of_right:
            raise ValueError(f"slot {right!r} already taken")
        if left in self.match_of_left:
            old = self.match_of_left.pop(left)
            del self.match_of_right[old]
        self.match_of_left[left] = right
        self.match_of_right[right] = left

    def release(self, left: Left) -> Optional[Right]:
        """Drop ``left``'s assignment; returns the freed slot if any."""
        right = self.match_of_left.pop(left, None)
        if right is not None:
            del self.match_of_right[right]
            self._pinned.discard(right)
        return right

    # ------------------------------------------------------------------
    def try_add(self, left: Left,
                allowed: Optional[Callable[[Right], bool]] = None) -> bool:
        """Try to match ``left``, reassigning others if necessary.

        ``allowed`` optionally restricts which slots ``left`` itself may
        take (the displaced items along the augmenting path may use any
        of their own neighbors).  Existing assignments move but are
        never dropped; pinned slots are never disturbed.
        """
        visited: Set[Right] = set()
        return self._augment(left, visited, allowed)

    def _augment(self, left: Left, visited: Set[Right],
                 allowed: Optional[Callable[[Right], bool]]) -> bool:
        for right in self._neighbors(left):
            if right in visited or right in self._pinned:
                continue
            if allowed is not None and not allowed(right):
                continue
            visited.add(right)
            occupant = self.match_of_right.get(right)
            if occupant is None or self._augment(occupant, visited, None):
                if left in self.match_of_left:
                    old = self.match_of_left[left]
                    if self.match_of_right.get(old) == left:
                        del self.match_of_right[old]
                self.match_of_left[left] = right
                self.match_of_right[right] = left
                return True
        return False

    def snapshot(self):
        return (dict(self.match_of_left), dict(self.match_of_right),
                set(self._pinned))

    def restore(self, state) -> None:
        left, right, pinned = state
        self.match_of_left = dict(left)
        self.match_of_right = dict(right)
        self._pinned = set(pinned)


def max_bipartite_matching(left_items: Iterable[Left],
                           neighbors: Callable[[Left], Iterable[Right]]
                           ) -> Dict[Left, Right]:
    """One-shot maximum-cardinality matching (Hungarian-free)."""
    matcher = BipartiteMatcher(neighbors)
    for item in left_items:
        matcher.try_add(item)
    return dict(matcher.match_of_left)
