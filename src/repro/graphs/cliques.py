"""Compatibility graphs with super-node merging.

Both interchip-connection synthesis after scheduling (Section 5.2) and
conditional I/O sharing (Section 7.2) work on a *compatibility graph*:
nodes are (sets of) I/O operations, an edge says its endpoints may share
a communication bus / slot, and synthesis proceeds by repeatedly
*combining* two adjacent nodes into a super-node.  Combining ``v1`` and
``v2`` keeps an edge to ``v'`` only if ``v'`` was adjacent to *both*
(members of a clique must be pairwise compatible), and the new edge
weight is the sum of the old ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

Member = Hashable


@dataclass(frozen=True)
class SuperNode:
    """An immutable set of members standing for one clique-in-progress."""

    members: FrozenSet[Member]

    @classmethod
    def of(cls, *members: Member) -> "SuperNode":
        return cls(frozenset(members))

    def merged(self, other: "SuperNode") -> "SuperNode":
        return SuperNode(self.members | other.members)

    def __iter__(self):
        return iter(sorted(self.members, key=repr))

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        inner = ",".join(str(m) for m in sorted(self.members, key=repr))
        return f"{{{inner}}}"


class CompatibilityGraph:
    """Undirected weighted graph over :class:`SuperNode` instances."""

    def __init__(self) -> None:
        self._nodes: Set[SuperNode] = set()
        self._weights: Dict[FrozenSet[SuperNode], Fraction] = {}

    # ------------------------------------------------------------------
    def add_node(self, node: SuperNode) -> SuperNode:
        self._nodes.add(node)
        return node

    def add_edge(self, a: SuperNode, b: SuperNode,
                 weight: Fraction = Fraction(0)) -> None:
        if a == b:
            raise ValueError("self-edges are meaningless here")
        if a not in self._nodes or b not in self._nodes:
            raise KeyError("both endpoints must be nodes")
        self._weights[frozenset((a, b))] = Fraction(weight)

    # ------------------------------------------------------------------
    def nodes(self) -> List[SuperNode]:
        return sorted(self._nodes, key=repr)

    def has_edge(self, a: SuperNode, b: SuperNode) -> bool:
        return frozenset((a, b)) in self._weights

    def weight(self, a: SuperNode, b: SuperNode) -> Optional[Fraction]:
        return self._weights.get(frozenset((a, b)))

    def neighbors(self, node: SuperNode) -> List[SuperNode]:
        out = []
        for pair in self._weights:
            if node in pair:
                (other,) = pair - {node}
                out.append(other)
        return sorted(out, key=repr)

    def edges(self) -> List[Tuple[SuperNode, SuperNode, Fraction]]:
        out = []
        for pair, weight in self._weights.items():
            a, b = sorted(pair, key=repr)
            out.append((a, b, weight))
        return sorted(out, key=lambda e: (repr(e[0]), repr(e[1])))

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def combine(self, a: SuperNode, b: SuperNode) -> SuperNode:
        """Merge two nodes; keep edges common to both, summing weights."""
        if a not in self._nodes or b not in self._nodes:
            raise KeyError("both endpoints must be nodes")
        merged = a.merged(b)
        neighbors_a = {n: self.weight(a, n) for n in self.neighbors(a)
                       if n != b}
        neighbors_b = {n: self.weight(b, n) for n in self.neighbors(b)
                       if n != a}
        # Drop everything touching a or b.
        self._weights = {pair: w for pair, w in self._weights.items()
                         if a not in pair and b not in pair}
        self._nodes.discard(a)
        self._nodes.discard(b)
        self._nodes.add(merged)
        for other in set(neighbors_a) & set(neighbors_b):
            self._weights[frozenset((merged, other))] = (
                neighbors_a[other] + neighbors_b[other])
        return merged

    def best_edge(self) -> Optional[Tuple[SuperNode, SuperNode, Fraction]]:
        """Highest-weight edge (deterministic tie-breaking), if any."""
        best = None
        for a, b, weight in self.edges():
            if best is None or weight > best[2]:
                best = (a, b, weight)
        return best
