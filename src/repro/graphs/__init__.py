"""Graph-algorithm substrate: matchings and compatibility graphs.

* maximum-cardinality bipartite matching via augmenting paths — the
  engine behind dynamic bus reassignment (Section 4.2: reassigning I/O
  operations to communication slots is exactly an augmenting-path
  search);
* the Hungarian algorithm for maximum-weight bipartite matching —
  Chapter 5 builds interchip connections by a series of weighted
  matchings between control-step groups;
* compatibility-graph utilities shared by the Chapter 5 clique
  partitioning and the Chapter 7.2 conditional-sharing heuristic.
"""

from repro.graphs.bipartite import BipartiteMatcher, max_bipartite_matching
from repro.graphs.hungarian import hungarian_max_weight
from repro.graphs.cliques import CompatibilityGraph, SuperNode

__all__ = [
    "BipartiteMatcher",
    "max_bipartite_matching",
    "hungarian_max_weight",
    "CompatibilityGraph",
    "SuperNode",
]
