"""Hungarian algorithm: maximum-weight bipartite matching.

Used by the Chapter 5 interchip-connection synthesis, which merges the
compatibility-graph groups with "a series of bipartite weighted
matchings" solved by "the Hungarian algorithm, which has a complexity of
O(n^3)" (Section 5.2).  Weight ties are broken toward *larger*
matchings: the paper distinguishes a zero-weight edge (the two I/O
operations can share a bus without sharing pins) from a missing edge, so
zero-weight pairs should still merge when nothing better exists.

The implementation is the classical O(n^3) potentials-plus-shortest-path
assignment algorithm over exact rationals.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

Item = Hashable

#: Cost standing in for "no edge": larger than any scaled real edge can
#: accumulate across n rows (set per call).
_FORBID_SCALE = 4


def hungarian_max_weight(left: Sequence[Item],
                         right: Sequence[Item],
                         weight: Callable[[Item, Item], Optional[Fraction]],
                         ) -> Dict[Item, Item]:
    """Maximum-weight matching; ``weight(u, v) is None`` means no edge.

    Among matchings of equal total weight, one with more edges wins.
    Returns a dict from left items to right items (only matched pairs).
    """
    n_left, n_right = len(left), len(right)
    if n_left == 0 or n_right == 0:
        return {}
    # Pad to (n_left + n_right) so *every* item can stay unmatched via
    # a dummy partner at cost 0 — a heavy edge elsewhere must never be
    # sacrificed just to raise cardinality.
    n = n_left + n_right

    # Scale: cost = -(w * (n + 1) + 1) for edges so that total weight
    # dominates and each extra edge is worth a tie-break unit; dummies
    # cost 0 (i.e. "leave unmatched").
    big = Fraction(0)
    costs: List[List[Optional[Fraction]]] = []
    for i in range(n):
        row: List[Optional[Fraction]] = []
        for j in range(n):
            if i < n_left and j < n_right:
                w = weight(left[i], right[j])
                if w is None:
                    row.append(None)
                else:
                    value = -(Fraction(w) * (n + 1) + 1)
                    big = max(big, -value)
                    row.append(value)
            else:
                row.append(Fraction(0))  # dummy pairing = unmatched
        costs.append(row)
    forbid = big * _FORBID_SCALE * (n + 1) + n + 1
    matrix = [[forbid if c is None else c for c in row] for row in costs]

    assignment = _assignment_min_cost(matrix)

    result: Dict[Item, Item] = {}
    for i, j in enumerate(assignment):
        if i < n_left and j < n_right and costs[i][j] is not None:
            result[left[i]] = right[j]
    return result


def _assignment_min_cost(a: List[List[Fraction]]) -> List[int]:
    """Square min-cost assignment; returns column of each row.

    Classical potentials formulation (rows 1..n assigned one at a time,
    augmenting along a shortest path in the equality graph).
    """
    n = len(a)
    INF = None  # represented by None; compare helper below

    u = [Fraction(0)] * (n + 1)
    v = [Fraction(0)] * (n + 1)
    p = [0] * (n + 1)      # p[j] = row matched to column j (1-based)
    way = [0] * (n + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv: List[Optional[Fraction]] = [None] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta: Optional[Fraction] = None
            j1 = -1
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = a[i0 - 1][j - 1] - u[i0] - v[j]
                if minv[j] is None or cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if delta is None or minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            assert delta is not None
            for j in range(n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                elif minv[j] is not None:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    answer = [0] * n
    for j in range(1, n + 1):
        if p[j]:
            answer[p[j] - 1] = j - 1
    return answer
