"""Functional-unit binding and pipelined register allocation.

Binding happens *after* scheduling (the classical ordering the thesis
assumes, Chapter 1).  Operations in the same control-step group overlap
across pipeline instances and must take different units; non-pipelined
multi-cycle units follow their allocation wheels (Section 7.4).

Register allocation works on *modular* lifetimes: a value born at step
``b`` and dead at step ``d`` occupies its register during steps
``b..d-1`` of every instance; instances repeat every ``L`` steps, so
the occupied cells are ``{t mod L}``.  A value whose span reaches ``L``
is alive in every cell simultaneously for ``ceil(span / L)`` concurrent
instances and receives that many dedicated registers; shorter values
pack into shared registers first-fit (the left-edge idea on circular
intervals).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.cdfg.ops import OpKind
from repro.errors import SchedulingError
from repro.scheduling.base import Schedule, _pipelined
from repro.scheduling.constraints import AllocationWheel

#: unit id: (partition, op_type, instance index)
UnitId = Tuple[int, str, int]
#: register id: (partition, index)
RegId = Tuple[int, int]


@dataclass
class FuBinding:
    """op name -> unit, plus per-unit occupancy for reporting."""

    unit_of: Dict[str, UnitId] = field(default_factory=dict)

    def units(self) -> List[UnitId]:
        return sorted(set(self.unit_of.values()))

    def ops_on(self, unit: UnitId) -> List[str]:
        return sorted(op for op, u in self.unit_of.items() if u == unit)

    def unit_counts(self) -> Dict[Tuple[int, str], int]:
        counts: Dict[Tuple[int, str], int] = {}
        for partition, op_type, index in self.units():
            key = (partition, op_type)
            counts[key] = max(counts.get(key, 0), index + 1)
        return counts


def bind_functional_units(schedule: Schedule) -> FuBinding:
    """First-fit binding consistent with the schedule's overlap."""
    graph = schedule.graph
    timing = schedule.timing
    L = schedule.initiation_rate
    binding = FuBinding()
    wheels: Dict[Tuple[int, str], List[AllocationWheel]] = {}
    group_use: Dict[Tuple[int, str], List[Set[int]]] = {}

    order = sorted((n for n in graph.functional_nodes()
                    if schedule.is_scheduled(n.name)),
                   key=lambda n: (schedule.step(n.name), n.name))
    for node in order:
        step = schedule.step(node.name)
        cycles = max(1, timing.cycles(node))
        key = (node.partition, node.op_type)
        if cycles > 1 and not _pipelined(timing, node):
            bank = wheels.setdefault(key, [])
            for index, wheel in enumerate(bank):
                if wheel.fits(step, cycles):
                    wheel.occupy(step, cycles)
                    binding.unit_of[node.name] = (*key, index)
                    break
            else:
                wheel = AllocationWheel(L)
                wheel.occupy(step, cycles)
                bank.append(wheel)
                binding.unit_of[node.name] = (*key, len(bank) - 1)
        else:
            bank2 = group_use.setdefault(key, [])
            group = step % L
            for index, used in enumerate(bank2):
                if group not in used:
                    used.add(group)
                    binding.unit_of[node.name] = (*key, index)
                    break
            else:
                bank2.append({group})
                binding.unit_of[node.name] = (*key, len(bank2) - 1)
    return binding


# ---------------------------------------------------------------------
@dataclass
class ValueLifetime:
    """One storage requirement inside a chip."""

    producer: str          # node whose result is stored
    partition: int
    bit_width: int
    birth: int             # first step the register holds the value
    death: int             # first step it is no longer needed

    @property
    def span(self) -> int:
        return max(1, self.death - self.birth)


@dataclass
class RegisterAllocation:
    """producer name -> registers, plus per-chip register counts."""

    regs_of: Dict[str, List[RegId]] = field(default_factory=dict)
    widths: Dict[RegId, int] = field(default_factory=dict)
    lifetimes: Dict[str, ValueLifetime] = field(default_factory=dict)

    def count(self, partition: int) -> int:
        return sum(1 for (p, _i) in self.widths if p == partition)

    def total_bits(self, partition: int) -> int:
        return sum(w for (p, _i), w in self.widths.items()
                   if p == partition)


def _value_lifetimes(graph: Cdfg, schedule: Schedule) -> List[ValueLifetime]:
    """Storage needs per chip: computed results and latched inputs."""
    L = schedule.initiation_rate
    timing = schedule.timing
    out: List[ValueLifetime] = []
    for node in graph.nodes():
        if not schedule.is_scheduled(node.name):
            continue
        if node.kind is OpKind.FUNCTIONAL:
            partition = node.partition
        elif node.kind is OpKind.IO:
            # The destination chip latches the incoming value once
            # (Section 2.2.1); partition 0 is the outside world.
            partition = node.dest_partition
            if partition == 0:
                continue
        else:
            continue
        birth = schedule.end_step(node.name) + 1 \
            if node.kind is OpKind.FUNCTIONAL \
            else schedule.step(node.name) + 1
        death = birth
        for edge in graph.out_edges(node.name):
            consumer = edge.dst
            if not schedule.is_scheduled(consumer):
                continue
            consumer_node = graph.node(consumer)
            if node.kind is OpKind.FUNCTIONAL \
                    and consumer_node.kind is OpKind.IO \
                    and consumer_node.source_partition != partition:
                continue
            use = schedule.step(consumer) + edge.degree * L
            death = max(death, use + 1)
        if death <= birth:
            continue  # consumed by chaining only; no register needed
        out.append(ValueLifetime(node.name, partition, node.bit_width,
                                 birth, death))
    return out


def allocate_registers(graph: Cdfg, schedule: Schedule
                       ) -> RegisterAllocation:
    """Modular-interval first-fit register allocation per chip."""
    L = schedule.initiation_rate
    allocation = RegisterAllocation()
    per_chip: Dict[int, List[ValueLifetime]] = {}
    for lifetime in _value_lifetimes(graph, schedule):
        per_chip.setdefault(lifetime.partition, []).append(lifetime)
        allocation.lifetimes[lifetime.producer] = lifetime

    for partition in sorted(per_chip):
        #: register index -> occupied cells (None = fully dedicated)
        occupied: List[Optional[Set[int]]] = []
        widths: List[int] = []

        def new_register(cells: Optional[Set[int]], width: int) -> int:
            occupied.append(cells)
            widths.append(width)
            return len(occupied) - 1

        # Left-edge flavour: longest spans first, then birth order.
        for lifetime in sorted(per_chip[partition],
                               key=lambda lt: (-lt.span, lt.birth,
                                               lt.producer)):
            regs: List[RegId] = []
            if lifetime.span >= L:
                copies = math.ceil(lifetime.span / L)
                for _ in range(copies):
                    index = new_register(None, lifetime.bit_width)
                    regs.append((partition, index))
            else:
                cells = {t % L for t in range(lifetime.birth,
                                              lifetime.death)}
                for index, used in enumerate(occupied):
                    if used is None:
                        continue
                    if used & cells:
                        continue
                    used |= cells
                    widths[index] = max(widths[index],
                                        lifetime.bit_width)
                    regs.append((partition, index))
                    break
                else:
                    index = new_register(set(cells), lifetime.bit_width)
                    regs.append((partition, index))
            allocation.regs_of[lifetime.producer] = regs
        for index, width in enumerate(widths):
            allocation.widths[(partition, index)] = width
    return allocation
