"""Per-chip RTL netlists with multiplexer insertion.

A chip's data path contains its bound functional units, its allocated
registers, input latches for incoming transfers, and the I/O port
slices defined by the interchip connection.  Any unit input port or bus
driver fed from more than one register gets a multiplexer (Figure
2.2(b)'s ``MUX`` in front of ``Sub1``); off-chip, never (Section 2.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.cdfg.ops import OpKind
from repro.core.interconnect import BusAssignment, Interconnect
from repro.rtl.binding import (FuBinding, RegId, RegisterAllocation,
                               UnitId, allocate_registers,
                               bind_functional_units)
from repro.scheduling.base import Schedule


@dataclass(frozen=True)
class MuxSpec:
    """A multiplexer: ``name`` selects one of ``sources``."""

    name: str
    width: int
    sources: Tuple[str, ...]

    @property
    def ways(self) -> int:
        return len(self.sources)


@dataclass
class ChipNetlist:
    """Structural content of one chip."""

    partition: int
    units: List[UnitId] = field(default_factory=list)
    registers: Dict[RegId, int] = field(default_factory=dict)
    muxes: List[MuxSpec] = field(default_factory=list)
    #: bus index -> port width (driving side)
    out_ports: Dict[int, int] = field(default_factory=dict)
    #: bus index -> port width (sampling side)
    in_ports: Dict[int, int] = field(default_factory=dict)

    def mux_input_total(self) -> int:
        return sum(m.ways for m in self.muxes)

    def area_estimate(self, unit_cost: float = 10.0,
                      reg_cost_per_bit: float = 0.5,
                      mux_cost_per_input: float = 0.25) -> float:
        """Crude relative area figure for reporting/ablation."""
        return (len(self.units) * unit_cost
                + sum(self.registers.values()) * reg_cost_per_bit
                + self.mux_input_total() * mux_cost_per_input)


@dataclass
class DesignNetlist:
    """All chips plus the (passive) interchip buses."""

    chips: Dict[int, ChipNetlist]
    interconnect: Optional[Interconnect]
    binding: FuBinding
    registers: RegisterAllocation

    def chip(self, partition: int) -> ChipNetlist:
        return self.chips[partition]


def _source_label(graph: Cdfg, registers: RegisterAllocation,
                  producer: str) -> str:
    """Where a consumer reads a value from inside the chip."""
    regs = registers.regs_of.get(producer)
    if regs:
        partition, index = regs[0]
        return f"r{index}"
    # Chained or constant: read combinationally from the producer.
    node = graph.node(producer)
    if node.kind is OpKind.CONSTANT:
        return f"const:{producer}"
    return f"wire:{producer}"


def unit_port_sources(graph: Cdfg, binding: FuBinding,
                      registers: RegisterAllocation
                      ) -> Tuple[Dict[Tuple[UnitId, int], Dict[str, None]],
                                 Dict[Tuple[UnitId, int], int]]:
    """Per (unit, input position): the source labels and port width."""
    port_sources: Dict[Tuple[UnitId, int], Dict[str, None]] = {}
    port_width: Dict[Tuple[UnitId, int], int] = {}
    for node in graph.functional_nodes():
        if node.name not in binding.unit_of:
            continue
        unit = binding.unit_of[node.name]
        for position, edge in enumerate(graph.in_edges(node.name)):
            label = _source_label(graph, registers, edge.src)
            key = (unit, position)
            port_sources.setdefault(key, {})[label] = None
            port_width[key] = max(port_width.get(key, 0),
                                  graph.node(edge.src).bit_width)
    return port_sources, port_width


def build_netlist(graph: Cdfg, schedule: Schedule,
                  interconnect: Optional[Interconnect] = None,
                  assignment: Optional[BusAssignment] = None,
                  binding: Optional[FuBinding] = None,
                  registers: Optional[RegisterAllocation] = None
                  ) -> DesignNetlist:
    """Bind (if not already bound) and assemble every chip's netlist."""
    binding = binding or bind_functional_units(schedule)
    registers = registers or allocate_registers(graph, schedule)

    chips: Dict[int, ChipNetlist] = {}

    def chip(partition: int) -> ChipNetlist:
        if partition not in chips:
            chips[partition] = ChipNetlist(partition)
        return chips[partition]

    for unit in binding.units():
        chip(unit[0]).units.append(unit)
    for reg, width in registers.widths.items():
        chip(reg[0]).registers[reg] = width

    # Multiplexers in front of unit input ports: collect, per unit and
    # port position, the set of sources feeding it across the ops bound
    # to that unit.
    port_sources, port_width = unit_port_sources(graph, binding,
                                                 registers)
    for (unit, position), sources in sorted(port_sources.items(),
                                            key=lambda kv: (repr(kv[0]))):
        if len(sources) > 1:
            name = (f"mux_{unit[1]}{unit[2]}_in{position}")
            chip(unit[0]).muxes.append(MuxSpec(
                name, port_width[(unit, position)],
                tuple(sorted(sources))))

    # Bus driver multiplexers: several values leaving one chip over one
    # bus port need an on-chip mux before the output pins.
    if interconnect is not None and assignment is not None:
        driver_sources: Dict[Tuple[int, int], Dict[str, None]] = {}
        for node in graph.io_nodes():
            if node.name not in assignment.bus_of:
                continue
            bus_index, _segment = assignment.of(node.name)
            src_part = node.source_partition
            if src_part != 0:
                producers = [e.src for e in graph.in_edges(node.name)]
                label = _source_label(graph, registers, producers[0]) \
                    if producers else f"wire:{node.name}"
                driver_sources.setdefault((src_part, bus_index),
                                          {})[label] = None
        for (partition, bus_index), sources in sorted(
                driver_sources.items()):
            if len(sources) > 1:
                bus = interconnect.bus(bus_index)
                width = bus.source_width(partition)
                chip(partition).muxes.append(MuxSpec(
                    f"mux_bus{bus_index}_out", width,
                    tuple(sorted(sources))))

        for bus in interconnect.buses:
            if bus.bidirectional:
                for partition, width in bus.bi_widths.items():
                    chip(partition).out_ports[bus.index] = width
                    chip(partition).in_ports[bus.index] = width
            else:
                for partition, width in bus.out_widths.items():
                    chip(partition).out_ports[bus.index] = width
                for partition, width in bus.in_widths.items():
                    chip(partition).in_ports[bus.index] = width

    for netlist in chips.values():
        netlist.units.sort()
    return DesignNetlist(chips=chips, interconnect=interconnect,
                         binding=binding, registers=registers)
