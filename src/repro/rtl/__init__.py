"""RTL data-path generation from a synthesized multi-chip design.

The dissertation's output is a register-transfer-level design: "an RTL
data path consists of operators and registers interconnected via
multiplexers, buses, and wires" (Chapter 1), with a *distributed*
controller per chip (Section 2.2).  This package performs the classical
binding steps the thesis assumes downstream:

* :mod:`repro.rtl.binding` — functional-unit binding (first-fit over
  control-step groups / allocation wheels) and pipelined register
  allocation (modular-interval left-edge; values alive longer than one
  initiation interval get one register per concurrent instance);
* :mod:`repro.rtl.netlist` — per-chip netlists with multiplexers
  inserted wherever a unit input or bus driver has several sources;
* :mod:`repro.rtl.controller` — steady-state control tables (one word
  per control-step group) for the distributed controllers;
* :mod:`repro.rtl.emit` — a structural, Verilog-flavoured text dump.
"""

from repro.rtl.binding import (FuBinding, RegisterAllocation,
                               bind_functional_units, allocate_registers)
from repro.rtl.netlist import ChipNetlist, DesignNetlist, build_netlist
from repro.rtl.controller import ControlTable, build_control_tables
from repro.rtl.emit import emit_structural

__all__ = [
    "FuBinding",
    "RegisterAllocation",
    "bind_functional_units",
    "allocate_registers",
    "ChipNetlist",
    "DesignNetlist",
    "build_netlist",
    "ControlTable",
    "build_control_tables",
    "emit_structural",
]
