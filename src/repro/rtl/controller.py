"""Distributed steady-state controllers (Section 2.2).

Each chip carries its own controller — central control would burn pins
and add off-chip control delay, so the thesis mandates one per chip.
In steady state a pipelined design repeats every ``L`` control steps;
the controller is a modulo-``L`` counter indexing a control word that
says, for that group: which operations fire on which units, which
registers load, which bus ports drive or sample, and which mux inputs
are selected.

(Pipeline fill is handled, as usual, by a validity shift register that
masks control words until the first instances flow through; the table
itself is the steady-state one.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import Cdfg
from repro.cdfg.ops import OpKind
from repro.core.interconnect import BusAssignment, Interconnect
from repro.rtl.binding import FuBinding, RegisterAllocation
from repro.scheduling.base import Schedule


@dataclass
class ControlWord:
    """Signals asserted during one control-step group."""

    group: int
    fire: List[Tuple[str, str]] = field(default_factory=list)
    reg_load: List[Tuple[str, str]] = field(default_factory=list)
    bus_drive: List[Tuple[int, str]] = field(default_factory=list)
    bus_sample: List[Tuple[int, str]] = field(default_factory=list)
    #: (mux name, selected source) for every mux active this group.
    mux_select: List[Tuple[str, str]] = field(default_factory=list)

    def signal_count(self) -> int:
        return (len(self.fire) + len(self.reg_load)
                + len(self.bus_drive) + len(self.bus_sample)
                + len(self.mux_select))


@dataclass
class ControlTable:
    """One chip's steady-state control store."""

    partition: int
    words: List[ControlWord]

    def word(self, group: int) -> ControlWord:
        return self.words[group]

    def total_signals(self) -> int:
        return sum(w.signal_count() for w in self.words)


def build_control_tables(graph: Cdfg, schedule: Schedule,
                         binding: FuBinding,
                         registers: RegisterAllocation,
                         interconnect: Optional[Interconnect] = None,
                         assignment: Optional[BusAssignment] = None
                         ) -> Dict[int, ControlTable]:
    """Control tables for every chip in the design."""
    L = schedule.initiation_rate
    partitions = sorted({n.partition for n in graph.functional_nodes()
                         if n.partition is not None}
                        | {n.dest_partition for n in graph.io_nodes()
                           if n.dest_partition != 0}
                        | {n.source_partition for n in graph.io_nodes()
                           if n.source_partition != 0})
    tables = {p: ControlTable(p, [ControlWord(g) for g in range(L)])
              for p in partitions}

    from repro.rtl.netlist import _source_label, unit_port_sources

    port_sources, _widths = unit_port_sources(graph, binding, registers)
    for node in graph.functional_nodes():
        if not schedule.is_scheduled(node.name):
            continue
        unit = binding.unit_of.get(node.name)
        if unit is None:
            continue
        group = schedule.group(node.name)
        word = tables[node.partition].words[group]
        word.fire.append((f"{unit[1]}{unit[2]}", node.name))
        # Mux selects: ports with several possible sources need the
        # right one steered while this operation fires.
        for position, edge in enumerate(graph.in_edges(node.name)):
            key = (unit, position)
            if len(port_sources.get(key, {})) > 1:
                label = _source_label(graph, registers, edge.src)
                word.mux_select.append(
                    (f"mux_{unit[1]}{unit[2]}_in{position}", label))
        regs = registers.regs_of.get(node.name)
        if regs:
            done = (schedule.end_step(node.name)) % L
            load_word = tables[node.partition].words[done]
            for _partition, index in regs[:1]:
                load_word.reg_load.append((f"r{index}", node.name))

    for node in graph.io_nodes():
        if not schedule.is_scheduled(node.name):
            continue
        group = schedule.group(node.name)
        bus_index = None
        if assignment is not None and node.name in assignment.bus_of:
            bus_index, _seg = assignment.of(node.name)
        if node.source_partition in tables:
            tables[node.source_partition].words[group].bus_drive.append(
                (bus_index if bus_index is not None else -1, node.name))
        if node.dest_partition in tables:
            word = tables[node.dest_partition].words[group]
            word.bus_sample.append(
                (bus_index if bus_index is not None else -1, node.name))
            regs = registers.regs_of.get(node.name)
            if regs:
                word.reg_load.append((f"r{regs[0][1]}", node.name))

    for table in tables.values():
        for word in table.words:
            word.fire.sort()
            word.reg_load.sort()
            word.bus_drive.sort()
            word.bus_sample.sort()
            word.mux_select.sort()
    return tables
