"""Structural text emission (Verilog-flavoured) of the RTL design.

One module per chip with its units, registers, muxes, I/O port slices
and the modulo-L controller ROM, plus a top module wiring chip ports
together through the passive interchip buses.  The output is meant for
human inspection and diffing, not tape-out: it documents exactly what
the synthesizer decided.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cdfg.graph import Cdfg
from repro.core.interconnect import BusAssignment, Interconnect
from repro.rtl.controller import ControlTable, build_control_tables
from repro.rtl.netlist import DesignNetlist, build_netlist
from repro.scheduling.base import Schedule


def emit_structural(graph: Cdfg, schedule: Schedule,
                    interconnect: Optional[Interconnect] = None,
                    assignment: Optional[BusAssignment] = None,
                    design_name: str = "design") -> str:
    """Build everything and return the structural text."""
    netlist = build_netlist(graph, schedule, interconnect, assignment)
    tables = build_control_tables(graph, schedule, netlist.binding,
                                  netlist.registers, interconnect,
                                  assignment)
    lines: List[str] = []
    lines.append(f"// {design_name}: {len(netlist.chips)} chips, "
                 f"initiation rate {schedule.initiation_rate}, "
                 f"pipe length {schedule.pipe_length}")
    for partition in sorted(netlist.chips):
        lines.extend(_emit_chip(netlist, tables.get(partition),
                                partition))
        lines.append("")
    lines.extend(_emit_top(netlist, design_name))
    return "\n".join(lines)


def _emit_chip(netlist: DesignNetlist, table: Optional[ControlTable],
               partition: int) -> List[str]:
    chip = netlist.chip(partition)
    lines = [f"module chip_p{partition} ("]
    ports = []
    for bus_index, width in sorted(chip.out_ports.items()):
        ports.append(f"  output wire [{width - 1}:0] bus{bus_index}_out")
    for bus_index, width in sorted(chip.in_ports.items()):
        ports.append(f"  input  wire [{width - 1}:0] bus{bus_index}_in")
    ports.append("  input  wire clk")
    lines.append(",\n".join(ports))
    lines.append(");")

    for unit in chip.units:
        lines.append(f"  // functional unit {unit[1]}{unit[2]}")
        lines.append(f"  fu_{unit[1]} u_{unit[1]}{unit[2]} (...);")
    for (part, index), width in sorted(chip.registers.items()):
        lines.append(f"  reg [{width - 1}:0] r{index};")
    for mux in chip.muxes:
        lines.append(f"  // {mux.ways}-way mux "
                     f"({', '.join(mux.sources)})")
        lines.append(f"  wire [{mux.width - 1}:0] {mux.name};")

    if table is not None:
        lines.append(f"  // controller ROM (modulo-"
                     f"{len(table.words)} steady state)")
        for word in table.words:
            ops = " ".join(f"{u}<={op}" for u, op in word.fire)
            loads = " ".join(f"{r}<={v}" for r, v in word.reg_load)
            drives = " ".join(f"C{b}!{v}" for b, v in word.bus_drive)
            samples = " ".join(f"C{b}?{v}" for b, v in word.bus_sample)
            lines.append(f"  //   step {word.group}: "
                         f"fire[{ops}] load[{loads}] "
                         f"drive[{drives}] sample[{samples}]")
    lines.append("endmodule")
    return lines


def _emit_top(netlist: DesignNetlist, design_name: str) -> List[str]:
    lines = [f"module {design_name}_top (input wire clk);"]
    if netlist.interconnect is not None:
        for bus in netlist.interconnect.buses:
            lines.append(f"  wire [{bus.width - 1}:0] "
                         f"bus{bus.index};  // "
                         f"{'/'.join(str(s) for s in bus.effective_segments())}"
                         f" bit segment(s)")
    for partition in sorted(netlist.chips):
        chip = netlist.chips[partition]
        connections = [".clk(clk)"]
        for bus_index in sorted(chip.out_ports):
            connections.append(
                f".bus{bus_index}_out(bus{bus_index})")
        for bus_index in sorted(chip.in_ports):
            connections.append(f".bus{bus_index}_in(bus{bus_index})")
        lines.append(f"  chip_p{partition} p{partition} "
                     f"({', '.join(connections)});")
    lines.append("endmodule")
    return lines
