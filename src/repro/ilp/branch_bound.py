"""Branch & bound ILP solver on top of the exact LP relaxation.

Depth-first with best-incumbent pruning, branching on the most
fractional integer variable.  Intended for the small-to-medium
verification ILPs of Chapters 4 and 6 (the production path uses the
heuristics, exactly as the dissertation does for practical sizes).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import IlpError
from repro.ilp.model import Model, Sense, Solution, SolveStatus, Var
from repro.ilp.simplex import solve_lp

Bounds = Dict[int, Tuple[Fraction, Optional[Fraction]]]


def _with_bounds(model: Model, bounds: Bounds) -> Model:
    """Clone the model with tightened variable bounds."""
    clone = Model(model.name)
    for var in model.vars:
        lb, ub = bounds.get(var.index, (var.lb, var.ub))
        clone.add_var(var.name, lb, ub, var.integer)
    clone.constraints = list(model.constraints)
    clone.objective = model.objective
    clone.sense = model.sense
    return clone


def _most_fractional(model: Model,
                     values: Dict[int, Fraction]) -> Optional[Var]:
    best_var: Optional[Var] = None
    best_dist = Fraction(0)
    for var in model.vars:
        if not var.integer:
            continue
        value = values.get(var.index, Fraction(0))
        if value.denominator == 1:
            continue
        frac_part = value - Fraction(int(value // 1))
        dist = min(frac_part, 1 - frac_part)
        if best_var is None or dist > best_dist:
            best_var = var
            best_dist = dist
    return best_var


def solve_ilp(model: Model,
              node_limit: int = 100_000,
              max_iter: int = 200_000) -> Solution:
    """Solve the integer program exactly (within ``node_limit`` nodes)."""
    sense = model.sense
    incumbent: Optional[Solution] = None

    def better(a: Fraction, b: Fraction) -> bool:
        return a < b if sense is Sense.MINIMIZE else a > b

    stack: List[Bounds] = [{}]
    nodes = 0
    while stack:
        nodes += 1
        if nodes > node_limit:
            if incumbent is not None:
                return Solution(SolveStatus.ITERATION_LIMIT,
                                incumbent.objective, incumbent.values)
            return Solution(SolveStatus.ITERATION_LIMIT)
        bounds = stack.pop()
        relaxed = _with_bounds(model, bounds)
        lp = solve_lp(relaxed, max_iter=max_iter)
        if lp.status is SolveStatus.INFEASIBLE:
            continue
        if lp.status is SolveStatus.UNBOUNDED:
            # With all-integer data an unbounded relaxation means the
            # ILP is unbounded too (or infeasible; we report unbounded).
            return Solution(SolveStatus.UNBOUNDED)
        assert lp.objective is not None
        if incumbent is not None and not better(lp.objective,
                                                incumbent.objective):
            continue  # bound: relaxation cannot beat the incumbent
        branch_var = _most_fractional(model, lp.values)
        if branch_var is None:
            # Integral solution.
            if incumbent is None or better(lp.objective,
                                           incumbent.objective):
                incumbent = Solution(SolveStatus.OPTIMAL, lp.objective,
                                     dict(lp.values))
            continue
        value = lp.values[branch_var.index]
        floor_v = Fraction(value.numerator // value.denominator)
        lb, ub = bounds.get(branch_var.index,
                            (branch_var.lb, branch_var.ub))
        down: Bounds = dict(bounds)
        down[branch_var.index] = (lb, floor_v)
        up: Bounds = dict(bounds)
        up[branch_var.index] = (floor_v + 1, ub)
        # DFS order: explore "round up" first for maximization-style
        # packing models, "round down" first otherwise.
        if sense is Sense.MAXIMIZE:
            stack.append(down)
            stack.append(up)
        else:
            stack.append(up)
            stack.append(down)

    if incumbent is None:
        return Solution(SolveStatus.INFEASIBLE)
    return incumbent
