"""Branch & bound ILP solver on top of the exact LP relaxation.

Depth-first with best-incumbent pruning, branching on the most
fractional integer variable.  Intended for the small-to-medium
verification ILPs of Chapters 4 and 6 (the production path uses the
heuristics, exactly as the dissertation does for practical sizes).

The search keeps ONE mutable bounds overlay and walks the tree with an
explicit undo log: entering a node applies its bound change, exhausting
its subtree pops the matching ``restore`` record.  No model clones, no
per-node bounds-dict copies — the LP engine reads the overlay directly
through :func:`solve_lp`'s ``bounds`` parameter.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.ilp.model import Model, Sense, Solution, SolveStatus, Var
from repro.ilp.simplex import solve_lp
from repro.perf import PERF
from repro.robustness.budget import as_token

Bounds = Dict[int, Tuple[Fraction, Optional[Fraction]]]


def _most_fractional(model: Model,
                     values: Dict[int, Fraction]) -> Optional[Var]:
    best_var: Optional[Var] = None
    best_dist = Fraction(0)
    for var in model.vars:
        if not var.integer:
            continue
        value = values.get(var.index, Fraction(0))
        if value.denominator == 1:
            continue
        frac_part = value - Fraction(int(value // 1))
        dist = min(frac_part, 1 - frac_part)
        if best_var is None or dist > best_dist:
            best_var = var
            best_dist = dist
    return best_var


def solve_ilp(model: Model,
              node_limit: int = 100_000,
              max_iter: int = 200_000,
              budget=None) -> Solution:
    """Solve the integer program exactly (within ``node_limit`` nodes).

    ``budget`` (SolveBudget/BudgetToken) is ticked once per search node
    and raises :class:`repro.robustness.budget.BudgetExhausted` when the
    cap or deadline is hit; the best incumbent found so far is noted on
    the token so the exception carries it.
    """
    with PERF.phase("bnb.solve"):
        return _solve_ilp(model, node_limit, max_iter, budget)


def _solve_ilp(model: Model, node_limit: int, max_iter: int,
               budget=None) -> Solution:
    token = as_token(budget)
    sense = model.sense
    incumbent: Optional[Solution] = None

    def better(a: Fraction, b: Fraction) -> bool:
        return a < b if sense is Sense.MINIMIZE else a > b

    bounds: Bounds = {}
    # Stack entries: ("enter", idx, (lb, ub)) applies a bound and solves
    # the node; ("restore", idx, prev) reverts it once the subtree is
    # exhausted (prev None means the index had no override before).
    stack = [("enter", None, None)]
    nodes = 0
    while stack:
        kind, idx, payload = stack.pop()
        if kind == "restore":
            if payload is None:
                bounds.pop(idx, None)
            else:
                bounds[idx] = payload
            continue
        if idx is not None:
            bounds[idx] = payload
        nodes += 1
        PERF.inc("bnb.nodes")
        if token is not None:
            token.tick("bnb")
        if nodes > node_limit:
            if incumbent is not None:
                return Solution(SolveStatus.ITERATION_LIMIT,
                                incumbent.objective, incumbent.values)
            return Solution(SolveStatus.ITERATION_LIMIT)
        lp = solve_lp(model, max_iter=max_iter, bounds=bounds,
                      budget=token)
        if lp.status is SolveStatus.INFEASIBLE:
            continue
        if lp.status is SolveStatus.UNBOUNDED:
            # With all-integer data an unbounded relaxation means the
            # ILP is unbounded too (or infeasible; we report unbounded).
            return Solution(SolveStatus.UNBOUNDED)
        assert lp.objective is not None
        if incumbent is not None and not better(lp.objective,
                                                incumbent.objective):
            continue  # bound: relaxation cannot beat the incumbent
        branch_var = _most_fractional(model, lp.values)
        if branch_var is None:
            # Integral solution.
            if incumbent is None or better(lp.objective,
                                           incumbent.objective):
                incumbent = Solution(SolveStatus.OPTIMAL, lp.objective,
                                     dict(lp.values))
                if token is not None:
                    token.note_incumbent(
                        solver="bnb", nodes=nodes,
                        objective=float(incumbent.objective))
            continue
        value = lp.values[branch_var.index]
        floor_v = Fraction(value.numerator // value.denominator)
        prev = bounds.get(branch_var.index)
        lb, ub = prev if prev is not None \
            else (branch_var.lb, branch_var.ub)
        down = (lb, floor_v)
        up = (floor_v + 1, ub)
        # DFS order: explore "round up" first for maximization-style
        # packing models, "round down" first otherwise.
        first, second = (up, down) if sense is Sense.MAXIMIZE \
            else (down, up)
        stack.append(("restore", branch_var.index, prev))
        stack.append(("enter", branch_var.index, second))
        stack.append(("restore", branch_var.index, prev))
        stack.append(("enter", branch_var.index, first))

    if incumbent is None:
        return Solution(SolveStatus.INFEASIBLE)
    return incumbent
