"""Two-phase exact-rational primal simplex over :class:`Model`.

Bland's rule guarantees termination; exact rational arithmetic (sparse
integer-scaled rows, see :mod:`repro.ilp.tableau`) guarantees exactness.
This is the LP relaxation engine under the branch & bound solver and a
general-purpose checker for the connection ILPs.

Rows are built sparsely from the constraints' nonzero coefficient dicts
— no dense ``[0] * n`` scaffolding per upper-bound variable — and the
branch & bound solver passes its tightened variable bounds through the
``bounds`` overlay instead of cloning the model per node.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import IlpError
from repro.ilp.model import Model, Sense, Solution, SolveStatus
from repro.ilp.tableau import Tableau, ZERO, ONE
from repro.perf import PERF
from repro.robustness.budget import as_token

Bounds = Mapping[int, Tuple[Fraction, Optional[Fraction]]]


def _standard_rows(model: Model, bounds: Optional[Bounds] = None
                   ) -> Tuple[List[Dict[int, Fraction]],
                              List[Fraction], List[str]]:
    """Sparse rows over *shifted* variables (x' = x - lb >= 0).

    Upper bounds become explicit ``<=`` rows built directly from
    one-entry coefficient dicts.  Every returned op is ``"<="`` or
    ``"=="`` (``>=`` rows are negated).  ``bounds`` overlays tightened
    (lb, ub) pairs per variable index (branch & bound nodes).
    """
    rows: List[Dict[int, Fraction]] = []
    rhs: List[Fraction] = []
    ops: List[str] = []

    def effective(var) -> Tuple[Fraction, Optional[Fraction]]:
        if bounds is not None and var.index in bounds:
            return bounds[var.index]
        return var.lb, var.ub

    def push(coeffs: Dict[int, Fraction], b: Fraction, op: str) -> None:
        if op == ">=":
            coeffs = {i: -c for i, c in coeffs.items()}
            b = -b
            op = "<="
        rows.append({i: c for i, c in coeffs.items() if c})
        rhs.append(b)
        ops.append(op)

    for var in model.vars:
        lb, ub = effective(var)
        if ub is not None:
            push({var.index: ONE}, ub - lb, "<=")

    for constraint in model.constraints:
        shift = constraint.expr.const
        coeffs = dict(constraint.expr.terms)
        for i, c in coeffs.items():
            shift += c * effective(model.vars[i])[0]
        # expr op 0  ->  sum c_i x'_i  op  -shift
        push(coeffs, -shift, constraint.op)
    return rows, rhs, ops


def _scaled(coeffs: Dict[int, Fraction],
            b: Fraction) -> Tuple[Dict[int, int], int, int]:
    """Clear denominators: (integer numerators, rhs numerator, den)."""
    den = b.denominator
    for c in coeffs.values():
        cd = c.denominator
        if cd != 1:
            den = den * cd // gcd(den, cd)
    nums = {j: int(c * den) for j, c in coeffs.items()}
    return nums, int(b * den), den


def solve_lp(model: Model, max_iter: int = 200_000,
             bounds: Optional[Bounds] = None,
             budget=None) -> Solution:
    """Solve the LP relaxation of ``model`` exactly.

    ``bounds`` optionally overlays tightened (lb, ub) simple bounds per
    variable index without mutating or cloning the model.  ``budget``
    (SolveBudget/BudgetToken) is ticked once per LP solve — the natural
    iteration boundary of this engine from its callers' point of view
    (the pivot loop itself is bounded by ``max_iter``).
    """
    token = as_token(budget)
    if token is not None:
        token.tick("simplex")
    with PERF.phase("simplex.solve_lp"):
        PERF.inc("simplex.solves")
        return _solve_lp(model, max_iter, bounds)


def _solve_lp(model: Model, max_iter: int,
              bounds: Optional[Bounds]) -> Solution:
    n = len(model.vars)
    rows, rhs, ops = _standard_rows(model, bounds)
    m = len(rows)

    # Normalize to b >= 0 (flips <= rows to >= which then need surplus +
    # artificial; track per-row what we need).
    need_slack: List[Optional[int]] = [None] * m     # +1 slack column
    need_surplus: List[Optional[int]] = [None] * m   # -1 surplus column
    need_artificial: List[Optional[int]] = [None] * m
    for i in range(m):
        if rhs[i] < 0:
            rows[i] = {j: -c for j, c in rows[i].items()}
            rhs[i] = -rhs[i]
            if ops[i] == "<=":
                ops[i] = ">="

    total_cols = n
    for i in range(m):
        if ops[i] == "<=":
            need_slack[i] = total_cols
            total_cols += 1
        elif ops[i] == ">=":
            need_surplus[i] = total_cols
            total_cols += 1
    artificial_start = total_cols
    for i in range(m):
        if ops[i] == "==" or need_surplus[i] is not None:
            need_artificial[i] = total_cols
            total_cols += 1

    tab_rows: List[Tuple[Dict[int, int], int]] = []
    row_dens: List[int] = []
    basis: List[int] = []
    for i in range(m):
        nums, rhs_num, den = _scaled(rows[i], rhs[i])
        if need_slack[i] is not None:
            nums[need_slack[i]] = den
            basis.append(need_slack[i])
        if need_surplus[i] is not None:
            nums[need_surplus[i]] = -den
        if need_artificial[i] is not None:
            nums[need_artificial[i]] = den
            basis.append(need_artificial[i])
        tab_rows.append((nums, rhs_num))
        row_dens.append(den)

    # Phase 1: minimize sum of artificials; price out basic artificials.
    phase1_cost = {j: 1 for j in range(artificial_start, total_cols)}
    tableau = Tableau.from_sparse(total_cols, tab_rows, phase1_cost, basis,
                                  dens=row_dens)
    tableau.price_out_basis()
    status = tableau.primal_simplex(max_iter)
    if status == "unbounded":  # pragma: no cover - cannot happen in phase 1
        raise IlpError("phase-1 LP unbounded")
    if tableau.objective_value() > 0:
        return Solution(SolveStatus.INFEASIBLE)

    # Drive remaining artificials out of the basis (they sit at value 0).
    for i in range(m):
        if tableau.basis[i] >= artificial_start:
            pivot_col = None
            for j in sorted(tableau._nums[i]):
                if j < artificial_start:
                    pivot_col = j
                    break
            if pivot_col is not None:
                tableau.pivot(i, pivot_col)
    # Artificial columns are retired: they may never re-enter the basis
    # (a leftover basic artificial sits at zero in a redundant row).
    blocked = set(range(artificial_start, total_cols))

    # Phase 2: install the real objective and price out the basis.
    direction = ONE if model.sense is Sense.MINIMIZE else -ONE
    obj = {idx: coef * direction
           for idx, coef in model.objective.terms.items() if coef}
    obj_nums, _obj_rhs, obj_den = _scaled(obj, ZERO)
    # objective constant (incl. lb shifts) folded in at extraction time.
    tableau.set_cost_sparse(obj_nums, 0, obj_den)
    tableau.price_out_basis()
    status = tableau.primal_simplex(max_iter, banned=blocked)
    if status == "unbounded":
        return Solution(SolveStatus.UNBOUNDED)

    shifted: Dict[int, Fraction] = {}
    for col, value in tableau.basic_values():
        if col < n:
            shifted[col] = value

    def lower(var) -> Fraction:
        if bounds is not None and var.index in bounds:
            return bounds[var.index][0]
        return var.lb

    values = {var.index: shifted.get(var.index, ZERO) + lower(var)
              for var in model.vars}
    objective = model.objective.value(values)
    return Solution(SolveStatus.OPTIMAL, objective, values)
