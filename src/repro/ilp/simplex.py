"""Two-phase exact-rational primal simplex over :class:`Model`.

Bland's rule guarantees termination; Fractions guarantee exactness.
This is the LP relaxation engine under the branch & bound solver and a
general-purpose checker for the connection ILPs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import IlpError
from repro.ilp.model import Model, Sense, Solution, SolveStatus
from repro.ilp.tableau import Tableau, ZERO, ONE


def _standard_rows(model: Model) -> Tuple[List[List[Fraction]],
                                          List[Fraction], List[str]]:
    """Rows over *shifted* variables (x' = x - lb >= 0): (A, b, ops).

    Upper bounds become explicit ``<=`` rows.  Every returned op is
    ``"<="`` or ``"=="`` (``>=`` rows are negated).
    """
    n = len(model.vars)
    rows: List[List[Fraction]] = []
    rhs: List[Fraction] = []
    ops: List[str] = []

    def push(coeffs: Dict[int, Fraction], b: Fraction, op: str) -> None:
        if op == ">=":
            coeffs = {i: -c for i, c in coeffs.items()}
            b = -b
            op = "<="
        row = [ZERO] * n
        for i, c in coeffs.items():
            row[i] = c
        rows.append(row)
        rhs.append(b)
        ops.append(op)

    for var in model.vars:
        if var.ub is not None:
            push({var.index: ONE}, var.ub - var.lb, "<=")

    for constraint in model.constraints:
        shift = constraint.expr.const
        coeffs = dict(constraint.expr.terms)
        for i, c in coeffs.items():
            shift += c * model.vars[i].lb
        # expr op 0  ->  sum c_i x'_i  op  -shift
        push(coeffs, -shift, constraint.op)
    return rows, rhs, ops


def solve_lp(model: Model, max_iter: int = 200_000) -> Solution:
    """Solve the LP relaxation of ``model`` exactly."""
    n = len(model.vars)
    rows, rhs, ops = _standard_rows(model)
    m = len(rows)

    # Normalize to b >= 0 (flips <= rows to >= which then need surplus +
    # artificial; track per-row what we need).
    need_slack: List[Optional[int]] = [None] * m     # +1 slack column
    need_surplus: List[Optional[int]] = [None] * m   # -1 surplus column
    need_artificial: List[Optional[int]] = [None] * m
    for i in range(m):
        if rhs[i] < 0:
            rows[i] = [-c for c in rows[i]]
            rhs[i] = -rhs[i]
            if ops[i] == "<=":
                ops[i] = ">="

    total_cols = n
    for i in range(m):
        if ops[i] == "<=":
            need_slack[i] = total_cols
            total_cols += 1
        elif ops[i] == ">=":
            need_surplus[i] = total_cols
            total_cols += 1
    artificial_start = total_cols
    for i in range(m):
        if ops[i] == "==" or need_surplus[i] is not None:
            need_artificial[i] = total_cols
            total_cols += 1

    tab_rows: List[List[Fraction]] = []
    basis: List[int] = []
    for i in range(m):
        row = rows[i] + [ZERO] * (total_cols - n) + [rhs[i]]
        if need_slack[i] is not None:
            row[need_slack[i]] = ONE
            basis.append(need_slack[i])
        if need_surplus[i] is not None:
            row[need_surplus[i]] = -ONE
        if need_artificial[i] is not None:
            row[need_artificial[i]] = ONE
            basis.append(need_artificial[i])
        tab_rows.append(row)

    # Phase 1: minimize sum of artificials; price out basic artificials.
    cost = [ZERO] * (total_cols + 1)
    for j in range(artificial_start, total_cols):
        cost[j] = ONE
    tableau = Tableau(tab_rows, cost, basis)
    for i in range(m):
        if tableau.basis[i] >= artificial_start:
            tableau.cost = [a - b for a, b in
                            zip(tableau.cost, tableau.rows[i])]
    status = tableau.primal_simplex(max_iter)
    if status == "unbounded":  # pragma: no cover - cannot happen in phase 1
        raise IlpError("phase-1 LP unbounded")
    if tableau.objective_value() > 0:
        return Solution(SolveStatus.INFEASIBLE)

    # Drive remaining artificials out of the basis (they sit at value 0).
    for i in range(m):
        if tableau.basis[i] >= artificial_start:
            pivot_col = None
            for j in range(artificial_start):
                if tableau.rows[i][j] != 0:
                    pivot_col = j
                    break
            if pivot_col is not None:
                tableau.pivot(i, pivot_col)
    # Artificial columns are retired: they may never re-enter the basis
    # (a leftover basic artificial sits at zero in a redundant row).
    blocked = set(range(artificial_start, total_cols))

    # Phase 2: install the real objective and price out the basis.
    direction = ONE if model.sense is Sense.MINIMIZE else -ONE
    cost2 = [ZERO] * (total_cols + 1)
    for idx, coef in model.objective.terms.items():
        cost2[idx] = coef * direction
    # objective constant (incl. lb shifts) folded in at extraction time.
    tableau.cost = cost2
    for i in range(m):
        b = tableau.basis[i]
        coef = tableau.cost[b]
        if coef:
            tableau.cost = [a - coef * r for a, r in
                            zip(tableau.cost, tableau.rows[i])]
    status = tableau.primal_simplex(max_iter, banned=blocked)
    if status == "unbounded":
        return Solution(SolveStatus.UNBOUNDED)

    shifted: Dict[int, Fraction] = {}
    for col, value in tableau.basic_values():
        if col < n:
            shifted[col] = value
    values = {var.index: shifted.get(var.index, ZERO) + var.lb
              for var in model.vars}
    objective = model.objective.value(values)
    return Solution(SolveStatus.OPTIMAL, objective, values)
