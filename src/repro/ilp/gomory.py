"""Gomory's dual all-integer cutting-plane algorithm (Section 3.3).

The pin-allocation ILP has all-integer data and a trivial objective, so
its initial tableau is dual feasible and all-integer.  Each iteration of
the dual simplex generates an all-integer cut from the pivot row chosen
so the pivot element is exactly ``-1``; pivoting then keeps every
tableau entry integral.  The scheduler re-checks feasibility before each
I/O operation is placed by adding ``x_{w,k} >= 1`` to the *current*
tableau via the substitution update of Equations 3.12 -> 3.13 (the rhs
column decreases by the variable's current column), then resuming the
cutting-plane loop — usually a handful of iterations, since the feasible
region changed only slightly.

Performance architecture
------------------------
Because every entry stays integral, the whole solver runs on the sparse
integer fast path of :class:`repro.ilp.tableau.Tableau` (per-row
denominators are provably 1 throughout, asserted cheaply).  Feasibility
probes (``try_lower_bound`` / ``check_feasible``) no longer copy the
tableau: they drop a :meth:`Tableau.mark`, run the cutting-plane loop,
and roll back through the undo journal in O(touched) — the old
``snapshot()/restore()`` protocol cost O(rows x cols) Fraction copies
per probe and dominated every scheduling run.  ``snapshot``/``restore``
remain available for callers that need a detached deep copy.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import IlpError, InfeasibleError
from repro.ilp.model import Model, Sense, Solution, SolveStatus, Var
from repro.ilp.tableau import Tableau, ZERO, ONE
from repro.perf import PERF
from repro.robustness.budget import BudgetExhausted, as_token


def _require_integer(value: Fraction, what: str) -> int:
    if isinstance(value, int):
        return value
    if value.denominator != 1:
        raise IlpError(f"{what} must be integral, got {value}")
    return int(value)


def build_initial(model: Model) -> Tuple[
        List[Tuple[Dict[int, int], int]], Dict[int, int], Dict[int, int]]:
    """Initial (gcd-reduced) row set for the dual all-integer tableau.

    Returns ``(rows, cost, shifts)``: the ``<=``-form rows (coefficient
    dict, reduced rhs) in canonical build order — per-variable upper
    bounds first, then constraints — the minimization cost dict over
    structural columns, and the per-variable lower-bound shifts.  This
    is the shared front half of a cold :class:`DualAllIntegerSolver`
    build and of warm-start compatibility checking: two models whose
    rows differ only in the reduced rhs values share a tableau
    *structure* and can exchange a :class:`WarmBasis`.
    """
    n_vars = len(model.vars)
    direction = 1 if model.sense is Sense.MINIMIZE else -1

    cost: Dict[int, int] = {}  # structural columns; slacks stay 0
    for idx, coef in model.objective.terms.items():
        value = _require_integer(coef, "objective coeff") * direction
        if value < 0:
            raise IlpError(
                "initial tableau is not dual feasible: objective "
                f"coefficient of {model.vars[idx].name} is negative "
                "in minimization form")
        if value:
            cost[idx] = value

    rows: List[Tuple[Dict[int, int], int]] = []
    shifts: Dict[int, int] = {}

    def push_le(coeffs: Dict[int, int], b: int) -> None:
        # Euclidean row reduction: dividing an all-integer row by the
        # gcd of its coefficients (flooring the rhs) preserves the
        # integer feasible set and makes +-1 pivots far more common,
        # which slashes the number of cuts the dual all-integer
        # algorithm needs.
        g = 0
        for c in coeffs.values():
            g = math.gcd(g, c)
        if g > 1:
            coeffs = {i: c // g for i, c in coeffs.items()}
            b = b // g  # floor division: b may be negative
        rows.append((coeffs, b))

    for var in model.vars:
        if not var.integer:
            raise IlpError(
                f"dual all-integer solver needs integer variables; "
                f"{var.name} is continuous")
        lb = _require_integer(var.lb, f"lower bound of {var.name}")
        shifts[var.index] = lb
        if var.ub is not None:
            ub = _require_integer(var.ub, f"upper bound of {var.name}")
            push_le({var.index: 1}, ub - lb)

    for constraint in model.constraints:
        shift = constraint.expr.const
        coeffs: Dict[int, int] = {}
        for i, c in constraint.expr.terms.items():
            ci = _require_integer(c, "constraint coefficient")
            coeffs[i] = ci
            shift += ci * model.vars[i].lb
        b = _require_integer(-shift, "constraint constant")
        if constraint.op == "<=":
            push_le(coeffs, b)
        elif constraint.op == ">=":
            push_le({i: -c for i, c in coeffs.items()}, -b)
        else:  # ==
            push_le(dict(coeffs), b)
            push_le({i: -c for i, c in coeffs.items()}, -b)

    assert n_vars == len(shifts)
    return rows, cost, shifts


def structure_signature(model: Model,
                        rows: List[Tuple[Dict[int, int], int]],
                        cost: Dict[int, int]) -> str:
    """Content hash of everything a warm start must match exactly.

    Covers variable names/order/integrality/bound *presence* and every
    row's coefficient pattern plus the cost row — but **not** the rhs
    values (those are the perturbation a warm start absorbs) and not
    the bound/lower-bound *values* (they only move the reduced rhs).
    """
    payload = {
        "vars": [(v.name, bool(v.integer), v.ub is not None)
                 for v in model.vars],
        "rows": [sorted(coeffs.items()) for coeffs, _b in rows],
        "cost": sorted(cost.items()),
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


@dataclass
class WarmBasis:
    """A solved tableau exported for reuse on a structure-identical model.

    The snapshot is the *initial* optimized state of a parent solver —
    taken after the first :meth:`DualAllIntegerSolver.reoptimize` and
    before any committed lower bounds — together with the parent's
    initial reduced rhs vector.  Restoring onto a new model whose
    :func:`structure_signature` matches replays only the rhs deltas
    through the initial rows' slack columns (every final tableau row is
    the recorded linear combination of initial rows, and that
    combination is rhs-independent), then resumes the cutting-plane
    loop.  See DESIGN.md §12 for the soundness rules; all entries are
    integers (the all-integer invariant), so the snapshot is JSON
    round-trippable via :meth:`to_dict`.
    """

    signature: str
    n_structural: int
    n_cols: int
    initial_rhs: List[int]
    rows: List[Dict[int, int]]
    rhs: List[int]
    basis: List[int]
    cost_nums: Dict[int, int]
    cost_rhs: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "signature": self.signature,
            "n_structural": self.n_structural,
            "n_cols": self.n_cols,
            "initial_rhs": list(self.initial_rhs),
            "rows": [{str(j): v for j, v in row.items()}
                     for row in self.rows],
            "rhs": list(self.rhs),
            "basis": list(self.basis),
            "cost_nums": {str(j): v for j, v in self.cost_nums.items()},
            "cost_rhs": self.cost_rhs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WarmBasis":
        return cls(
            signature=str(data["signature"]),
            n_structural=int(data["n_structural"]),
            n_cols=int(data["n_cols"]),
            initial_rhs=[int(v) for v in data["initial_rhs"]],
            rows=[{int(j): int(v) for j, v in row.items()}
                  for row in data["rows"]],
            rhs=[int(v) for v in data["rhs"]],
            basis=[int(v) for v in data["basis"]],
            cost_nums={int(j): int(v)
                       for j, v in data["cost_nums"].items()},
            cost_rhs=int(data["cost_rhs"]),
        )


class DualAllIntegerSolver:
    """Feasibility/optimization of all-integer dual-feasible ILPs.

    Requirements checked at construction time:

    * every variable is integer with an integral lower bound;
    * every constraint coefficient and constant is integral;
    * the (minimization-form) objective has non-negative integral
      coefficients — the trivial ``minimize 0`` of the pin-allocation
      problem qualifies.
    """

    def __init__(self, model: Model, max_iter: int = 50_000,
                 budget=None) -> None:
        self.model = model
        self.max_iter = max_iter
        #: Cooperative cancellation token (SolveBudget/BudgetToken/None);
        #: ticked once per cutting-plane iteration in :meth:`reoptimize`.
        self.budget = as_token(budget)
        self._shifts: Dict[int, int] = {}
        self._col_of: Dict[int, int] = {}
        self._shift_log: List[Tuple[int, int]] = []
        self.cuts_generated = 0
        self.pivots = 0
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        model = self.model
        n = len(model.vars)
        rows, cost, shifts = build_initial(model)
        self._shifts = shifts
        self._initial_rhs = [b for _coeffs, b in rows]

        m = len(rows)
        tab_rows: List[Tuple[Dict[int, int], int]] = []
        basis: List[int] = []
        for i, (coeffs, b) in enumerate(rows):
            row = dict(coeffs)
            row[n + i] = 1  # slack
            tab_rows.append((row, b))
            basis.append(n + i)
        self.tableau = Tableau.from_sparse(n + m, tab_rows, cost, basis)
        self.tableau.enable_undo()
        for var in model.vars:
            self._col_of[var.index] = var.index

    # -- warm starts ----------------------------------------------------
    def export_warm_basis(self) -> Optional["WarmBasis"]:
        """Snapshot the current tableau as a :class:`WarmBasis`.

        Only exports *initial* states: after committed lower bounds the
        tableau encodes bounds a structure-identical sibling model does
        not have, so the export refuses (returns ``None``).  Likewise
        if any row left the all-integer fast path (never happens on the
        Gomory path, checked defensively).
        """
        if self._shift_log:
            return None
        tab = self.tableau
        for var in self.model.vars:
            if self._shifts[var.index] != _require_integer(
                    var.lb, f"lower bound of {var.name}"):
                return None
        if tab._cost_den != 1 or any(d != 1 for d in tab._dens):
            return None  # pragma: no cover - all-integer invariant
        rows, cost, _shifts = build_initial(self.model)
        return WarmBasis(
            signature=structure_signature(self.model, rows, cost),
            n_structural=len(self.model.vars),
            n_cols=tab.n_cols,
            initial_rhs=list(self._initial_rhs),
            rows=[dict(r) for r in tab._nums],
            rhs=list(tab._rhs_num),
            basis=list(tab.basis),
            cost_nums=dict(tab._cost_nums),
            cost_rhs=tab._cost_rhs,
        )

    @classmethod
    def warm_start(cls, model: Model, warm: WarmBasis,
                   max_iter: int = 50_000,
                   budget=None) -> Optional["DualAllIntegerSolver"]:
        """Solver for ``model`` started from a parent's solved tableau.

        Accepts when ``model`` shares the parent's tableau structure
        (same variables, same row coefficient patterns — only reduced
        rhs values may differ) **and** the resumed cutting-plane loop
        restores primal feasibility.  The rhs perturbation is replayed
        exactly: every final tableau row is a fixed linear combination
        of initial rows whose weights are the row's entries in the
        initial slack columns, so ``rhs[i] += delta_j * row[i][n + j]``.

        Returns ``None`` — counting ``gomory.warm_rejected`` — on any
        structure mismatch, on an iteration cap, or when the warm
        tableau reoptimizes to *infeasible*: the parent's Gomory cuts
        are valid for the new rhs only as one-sided evidence (a feasible
        basis is a genuine integer point of the new system, but an
        infeasible verdict may be an artifact of cuts derived for the
        old rhs), so infeasibility must be re-proved cold.
        """
        PERF.inc("gomory.warm_attempts")
        try:
            rows, cost, shifts = build_initial(model)
        except IlpError:
            PERF.inc("gomory.warm_rejected")
            return None
        if (len(rows) != len(warm.initial_rhs)
                or len(model.vars) != warm.n_structural
                or structure_signature(model, rows, cost)
                != warm.signature):
            PERF.inc("gomory.warm_rejected")
            return None

        solver = cls.__new__(cls)
        solver.model = model
        solver.max_iter = max_iter
        solver.budget = as_token(budget)
        solver._shifts = shifts
        solver._col_of = {var.index: var.index for var in model.vars}
        solver._shift_log = []
        solver.cuts_generated = 0
        solver.pivots = 0
        solver._initial_rhs = [b for _coeffs, b in rows]
        # Every initial row is <=-form with identical coefficients, so
        # rhs <= parent rhs component-wise means the new feasible set
        # is a *subset* of the parent's — the inherited cuts are then
        # valid outright and even "infeasible" answers are sound.
        solver.warm_sound = all(
            new_b <= old_b for old_b, new_b
            in zip(warm.initial_rhs, solver._initial_rhs))

        nums = [dict(r) for r in warm.rows]
        rhs = list(warm.rhs)
        cost_nums = dict(warm.cost_nums)
        cost_rhs = warm.cost_rhs
        n = warm.n_structural
        for j, (old_b, new_b) in enumerate(zip(warm.initial_rhs,
                                               solver._initial_rhs)):
            delta = new_b - old_b
            if not delta:
                continue
            col = n + j
            for i in range(len(nums)):
                w = nums[i].get(col, 0)
                if w:
                    rhs[i] += w * delta
            cw = cost_nums.get(col, 0)
            if cw:
                cost_rhs += cw * delta
        tab = Tableau.from_sparse(
            warm.n_cols, list(zip(nums, rhs)), cost_nums,
            list(warm.basis))
        tab._cost_rhs = cost_rhs
        tab._rebuild_shadow()
        solver.tableau = tab
        solver.tableau.enable_undo()
        try:
            feasible = solver.reoptimize()
        except (IlpError, BudgetExhausted):
            PERF.inc("gomory.warm_rejected")
            return None
        if not feasible:
            PERF.inc("gomory.warm_rejected")
            return None
        PERF.inc("gomory.warm_accepted")
        return solver

    # -- undo-log backtracking -----------------------------------------
    def _mark(self):
        """Checkpoint of tableau + shifts + counters for :meth:`_undo`."""
        return (self.tableau.mark(), len(self._shift_log),
                self.cuts_generated, self.pivots)

    def _undo(self, token) -> None:
        tab_mark, shift_mark, cuts, pivots = token
        self.tableau.undo_to(tab_mark)
        while len(self._shift_log) > shift_mark:
            idx, amount = self._shift_log.pop()
            self._shifts[idx] -= amount
        self.cuts_generated = cuts
        self.pivots = pivots

    def _commit_journal(self) -> None:
        """Forget undo state: committed changes are never rolled back."""
        self.tableau.journal_clear()
        self._shift_log.clear()

    # -- detached deep-copy snapshots (debugging / external callers) ---
    def snapshot(self) -> Tuple[Tableau, Dict[int, int], int, int]:
        return (self.tableau.copy(), dict(self._shifts),
                self.cuts_generated, self.pivots)

    def restore(self, state) -> None:
        tableau, shifts, cuts, pivots = state
        self.tableau = tableau
        self.tableau.enable_undo()
        self._shifts = shifts
        self._shift_log = []
        self.cuts_generated = cuts
        self.pivots = pivots

    # ------------------------------------------------------------------
    def add_lower_bound(self, var: Var, amount: int = 1) -> None:
        """Raise ``var``'s lower bound by ``amount`` incrementally.

        Implements the tableau update of Equations 3.12 -> 3.13:
        substituting ``x = x' + amount`` subtracts ``amount`` times the
        variable's current column from the rhs column.
        """
        if amount <= 0:
            raise IlpError("amount must be positive")
        col = self._col_of[var.index]
        self.tableau.apply_column_shift(col, amount)
        self._shifts[var.index] += amount
        self._shift_log.append((var.index, amount))

    # ------------------------------------------------------------------
    def reoptimize(self) -> bool:
        """Run the dual all-integer loop; True iff (still) feasible."""
        PERF.inc("gomory.reoptimize_calls")
        tab = self.tableau
        nums = tab._nums
        rhs = tab._rhs_num
        budget = self.budget
        for _ in range(self.max_iter):
            if budget is not None:
                budget.tick("gomory")
            # Re-fetch each round: pivots replace the cost dict
            # copy-on-write, so a loop-wide alias would go stale.
            cost = tab._cost_nums
            # Most-negative-rhs row selection (all dens are 1 here: the
            # initial data is integral and every pivot element is -1).
            row = -1
            most_negative = 0
            for i in range(len(rhs)):
                value = rhs[i]
                if value < most_negative:
                    most_negative = value
                    row = i
            if row < 0:
                return True

            # Eligible columns: negative entries in the pivot row.  The
            # sparse row yields only its nonzeros, so this is O(nnz).
            prow = nums[row]
            eligible = [j for j, v in prow.items() if v < 0]
            if not eligible:
                return False

            # Column choice: smallest reduced cost (guarantees m_j >= 1
            # below); among cost ties prefer entries of -1 — they pivot
            # directly without generating a cut — then small magnitudes.
            k = min(eligible,
                    key=lambda j: (cost.get(j, 0), -prow[j] != 1,
                                   -prow[j], j))
            cost_k = cost.get(k, 0)
            # lam as an exact ratio lam_num/lam_den (both positive).
            lam_num = -prow[k]
            lam_den = 1
            if cost_k != 0:
                for j in eligible:
                    if j == k:
                        continue
                    m_j = cost.get(j, 0) // cost_k  # floor; >= 1 by k
                    cand = -prow[j]
                    if cand * lam_den > lam_num * m_j:
                        lam_num = cand
                        lam_den = m_j

            if lam_num == lam_den:
                # Pivot element is already -1: plain dual-simplex pivot.
                tab.pivot(row, k)
                self.pivots += 1
                continue

            # Generate the all-integer cut floor(row / lam) and pivot on
            # its k entry, which equals -1 by construction.  lam > 0, so
            # zero entries floor to zero and stay out of the sparse row.
            cut: Dict[int, int] = {}
            for j, v in prow.items():
                c = (v * lam_den) // lam_num
                if c:
                    cut[j] = c
            cut_rhs = (rhs[row] * lam_den) // lam_num
            slack_col = tab.add_column(0)
            cut[slack_col] = 1
            cut_row = tab.add_row(cut, cut_rhs, slack_col)
            if nums[cut_row].get(k, 0) != -1:  # pragma: no cover
                raise IlpError("all-integer cut pivot is not -1")
            tab.pivot(cut_row, k)
            self.cuts_generated += 1
            self.pivots += 1
            PERF.inc("gomory.cuts")
        raise IlpError("dual all-integer iteration limit exceeded")

    # ------------------------------------------------------------------
    def check_feasible(self) -> bool:
        """Non-destructively check feasibility of the current state."""
        PERF.inc("gomory.checks")
        token = self._mark()
        try:
            return self.reoptimize()
        finally:
            self._undo(token)

    def try_lower_bound(self, var: Var, amount: int = 1) -> bool:
        """Would raising the bound keep the ILP feasible?  (Rolls back.)"""
        return self.probe_lower_bound(var, amount)[0]

    def probe_lower_bound(self, var: Var, amount: int = 1
                          ) -> Tuple[bool, Optional[Dict[int, int]]]:
        """:meth:`try_lower_bound` plus the feasible point it found.

        Returns ``(feasible, values)`` where ``values`` maps variable
        index to its integral value in the re-optimized solution (or
        ``None`` when infeasible) — the *witness* callers hand to the
        oracle store so "feasible" verdicts transfer to every budget
        vector the witness still fits.  Rolls back either way.
        """
        PERF.inc("gomory.probes")
        token = self._mark()
        self.add_lower_bound(var, amount)
        try:
            feasible = self.reoptimize()
            values = self.solution_values() if feasible else None
        except (IlpError, BudgetExhausted):
            self._undo(token)
            raise
        # Keep the re-optimized tableau only if the caller commits.
        self._undo(token)
        return feasible, values

    def solution_values(self) -> Optional[Dict[int, int]]:
        """Integral values of the current basic solution, by var index."""
        basic = self.tableau.integral_basic_values()
        if basic is None:  # pragma: no cover - all-integer invariant
            return None
        return {var.index: int(basic.get(self._col_of[var.index], 0)
                               + self._shifts[var.index])
                for var in self.model.vars}

    def commit_lower_bound(self, var: Var, amount: int = 1) -> None:
        """Raise the bound for real; raises if it makes the ILP infeasible."""
        with PERF.phase("gomory.commit"):
            self._commit_lower_bound(var, amount)

    def _commit_lower_bound(self, var: Var, amount: int = 1) -> None:
        PERF.inc("gomory.commits")
        token = self._mark()
        self.add_lower_bound(var, amount)
        feasible = False
        try:
            feasible = self.reoptimize()
        finally:
            if not feasible:
                self._undo(token)
        if not feasible:
            raise InfeasibleError(
                f"raising {var.name} by {amount} makes the pin allocation "
                f"infeasible")
        # The bound is permanent: truncate the undo log so memory stays
        # bounded by the work since the last commit.
        self._commit_journal()

    # ------------------------------------------------------------------
    def solve(self) -> Solution:
        """Solve to optimality (for models with a dual-feasible start)."""
        with PERF.phase("gomory.solve"):
            return self._solve()

    def _solve(self) -> Solution:
        if not self.reoptimize():
            return Solution(SolveStatus.INFEASIBLE)
        values: Dict[int, Fraction] = {}
        basic = self.tableau.integral_basic_values()
        if basic is None:  # pragma: no cover - all-integer invariant
            raise IlpError("dual all-integer tableau left a fractional rhs")
        for var in self.model.vars:
            col = self._col_of[var.index]
            value = Fraction(basic.get(col, 0) + self._shifts[var.index])
            values[var.index] = value
        objective = self.model.objective.value(values)
        return Solution(SolveStatus.OPTIMAL, objective, values)
