"""Gomory's dual all-integer cutting-plane algorithm (Section 3.3).

The pin-allocation ILP has all-integer data and a trivial objective, so
its initial tableau is dual feasible and all-integer.  Each iteration of
the dual simplex generates an all-integer cut from the pivot row chosen
so the pivot element is exactly ``-1``; pivoting then keeps every
tableau entry integral.  The scheduler re-checks feasibility before each
I/O operation is placed by adding ``x_{w,k} >= 1`` to the *current*
tableau via the substitution update of Equations 3.12 -> 3.13 (the rhs
column decreases by the variable's current column), then resuming the
cutting-plane loop — usually a handful of iterations, since the feasible
region changed only slightly.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import IlpError, InfeasibleError
from repro.ilp.model import Model, Sense, Solution, SolveStatus, Var
from repro.ilp.tableau import Tableau, ZERO, ONE


def _require_integer(value: Fraction, what: str) -> Fraction:
    if value.denominator != 1:
        raise IlpError(f"{what} must be integral, got {value}")
    return value


class DualAllIntegerSolver:
    """Feasibility/optimization of all-integer dual-feasible ILPs.

    Requirements checked at construction time:

    * every variable is integer with an integral lower bound;
    * every constraint coefficient and constant is integral;
    * the (minimization-form) objective has non-negative integral
      coefficients — the trivial ``minimize 0`` of the pin-allocation
      problem qualifies.
    """

    def __init__(self, model: Model, max_iter: int = 50_000) -> None:
        self.model = model
        self.max_iter = max_iter
        self._shifts: Dict[int, Fraction] = {}
        self._col_of: Dict[int, int] = {}
        self.cuts_generated = 0
        self.pivots = 0
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        model = self.model
        n = len(model.vars)
        direction = ONE if model.sense is Sense.MINIMIZE else -ONE

        cost = [ZERO] * (n)  # structural columns; slacks appended later
        for idx, coef in model.objective.terms.items():
            value = _require_integer(coef * direction, "objective coeff")
            if value < 0:
                raise IlpError(
                    "initial tableau is not dual feasible: objective "
                    f"coefficient of {model.vars[idx].name} is negative "
                    "in minimization form")
            cost[idx] = value

        rows: List[Tuple[Dict[int, Fraction], Fraction]] = []

        def push_le(coeffs: Dict[int, Fraction], b: Fraction) -> None:
            # Euclidean row reduction: dividing an all-integer row by the
            # gcd of its coefficients (flooring the rhs) preserves the
            # integer feasible set and makes +-1 pivots far more common,
            # which slashes the number of cuts the dual all-integer
            # algorithm needs.
            g = 0
            for c in coeffs.values():
                g = math.gcd(g, abs(int(c)))
            if g > 1:
                coeffs = {i: c / g for i, c in coeffs.items()}
                b = Fraction(math.floor(b / g))
            rows.append((coeffs, b))

        for var in model.vars:
            if not var.integer:
                raise IlpError(
                    f"dual all-integer solver needs integer variables; "
                    f"{var.name} is continuous")
            _require_integer(var.lb, f"lower bound of {var.name}")
            self._shifts[var.index] = var.lb
            if var.ub is not None:
                ub = _require_integer(var.ub, f"upper bound of {var.name}")
                push_le({var.index: ONE}, ub - var.lb)

        for constraint in model.constraints:
            shift = constraint.expr.const
            coeffs = dict(constraint.expr.terms)
            for i, c in coeffs.items():
                _require_integer(c, "constraint coefficient")
                shift += c * model.vars[i].lb
            b = _require_integer(-shift, "constraint constant")
            if constraint.op == "<=":
                push_le(coeffs, b)
            elif constraint.op == ">=":
                push_le({i: -c for i, c in coeffs.items()}, -b)
            else:  # ==
                push_le(dict(coeffs), b)
                push_le({i: -c for i, c in coeffs.items()}, -b)

        m = len(rows)
        total = n + m
        tab_rows: List[List[Fraction]] = []
        basis: List[int] = []
        for i, (coeffs, b) in enumerate(rows):
            row = [ZERO] * (total + 1)
            for idx, c in coeffs.items():
                row[idx] = c
            row[n + i] = ONE
            row[-1] = b
            tab_rows.append(row)
            basis.append(n + i)
        full_cost = cost + [ZERO] * m + [ZERO]
        self.tableau = Tableau(tab_rows, full_cost, basis)
        for var in model.vars:
            self._col_of[var.index] = var.index

    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[Tableau, Dict[int, Fraction], int, int]:
        return (self.tableau.copy(), dict(self._shifts),
                self.cuts_generated, self.pivots)

    def restore(self, state) -> None:
        tableau, shifts, cuts, pivots = state
        self.tableau = tableau
        self._shifts = shifts
        self.cuts_generated = cuts
        self.pivots = pivots

    # ------------------------------------------------------------------
    def add_lower_bound(self, var: Var, amount: int = 1) -> None:
        """Raise ``var``'s lower bound by ``amount`` incrementally.

        Implements the tableau update of Equations 3.12 -> 3.13:
        substituting ``x = x' + amount`` subtracts ``amount`` times the
        variable's current column from the rhs column.
        """
        if amount <= 0:
            raise IlpError("amount must be positive")
        col = self._col_of[var.index]
        tab = self.tableau
        for i in range(tab.n_rows):
            coef = tab.rows[i][col]
            if coef:
                tab.rows[i][-1] -= coef * amount
        # Objective shifts too (cost[-1] holds -z).
        if tab.cost[col]:
            tab.cost[-1] -= tab.cost[col] * amount
        self._shifts[var.index] += amount

    # ------------------------------------------------------------------
    def reoptimize(self) -> bool:
        """Run the dual all-integer loop; True iff (still) feasible."""
        tab = self.tableau
        for _ in range(self.max_iter):
            # Most-negative-rhs row selection.
            row = None
            most_negative: Optional[Fraction] = None
            for i in range(tab.n_rows):
                value = tab.rhs(i)
                if value < 0 and (most_negative is None
                                  or value < most_negative):
                    most_negative = value
                    row = i
            if row is None:
                return True

            # Eligible columns: negative entries in the pivot row.
            eligible = [j for j in range(tab.n_cols)
                        if tab.rows[row][j] < 0]
            if not eligible:
                return False

            # Column choice: smallest reduced cost (guarantees m_j >= 1
            # below); among cost ties prefer entries of -1 — they pivot
            # directly without generating a cut — then small magnitudes.
            k = min(eligible,
                    key=lambda j: (tab.cost[j], -tab.rows[row][j] != 1,
                                   -tab.rows[row][j], j))
            cost_k = tab.cost[k]
            if cost_k == 0:
                lam = -tab.rows[row][k]
            else:
                lam = -tab.rows[row][k]
                for j in eligible:
                    if j == k:
                        continue
                    m_j = tab.cost[j] // cost_k  # floor; >= 1 by choice of k
                    candidate = Fraction(-tab.rows[row][j], 1) / m_j
                    if candidate > lam:
                        lam = candidate

            if lam == 1:
                # Pivot element is already -1: plain dual-simplex pivot.
                tab.pivot(row, k)
                self.pivots += 1
                continue

            # Generate the all-integer cut floor(row / lam) and pivot on
            # its k entry, which equals -1 by construction.
            cut = [Fraction(_floor_div(tab.rows[row][j], lam))
                   for j in range(tab.n_cols)]
            cut_rhs = Fraction(_floor_div(tab.rows[row][-1], lam))
            slack_col = tab.add_column(ZERO)
            cut.append(ONE)  # the new slack column
            cut_row = tab.add_row(cut, cut_rhs, slack_col)
            if tab.rows[cut_row][k] != -1:  # pragma: no cover - invariant
                raise IlpError("all-integer cut pivot is not -1")
            tab.pivot(cut_row, k)
            self.cuts_generated += 1
            self.pivots += 1
        raise IlpError("dual all-integer iteration limit exceeded")

    # ------------------------------------------------------------------
    def check_feasible(self) -> bool:
        """Non-destructively check feasibility of the current state."""
        state = self.snapshot()
        try:
            return self.reoptimize()
        finally:
            self.restore(state)

    def try_lower_bound(self, var: Var, amount: int = 1) -> bool:
        """Would raising the bound keep the ILP feasible?  (Restores.)"""
        state = self.snapshot()
        self.add_lower_bound(var, amount)
        try:
            feasible = self.reoptimize()
        except IlpError:
            self.restore(state)
            raise
        if not feasible:
            self.restore(state)
            return False
        # Keep the re-optimized tableau only if the caller commits.
        self.restore(state)
        return True

    def commit_lower_bound(self, var: Var, amount: int = 1) -> None:
        """Raise the bound for real; raises if it makes the ILP infeasible."""
        state = self.snapshot()
        self.add_lower_bound(var, amount)
        if not self.reoptimize():
            self.restore(state)
            raise InfeasibleError(
                f"raising {var.name} by {amount} makes the pin allocation "
                f"infeasible")

    # ------------------------------------------------------------------
    def solve(self) -> Solution:
        """Solve to optimality (for models with a dual-feasible start)."""
        if not self.reoptimize():
            return Solution(SolveStatus.INFEASIBLE)
        values: Dict[int, Fraction] = {}
        basic = dict(self.tableau.basic_values())
        for var in self.model.vars:
            col = self._col_of[var.index]
            value = basic.get(col, ZERO) + self._shifts[var.index]
            values[var.index] = value
        objective = self.model.objective.value(values)
        return Solution(SolveStatus.OPTIMAL, objective, values)


def _floor_div(a: Fraction, lam: Fraction) -> int:
    """floor(a / lam) for exact rationals."""
    q = a / lam
    return q.numerator // q.denominator
