"""Dense exact-rational reference tableau (the original Fraction path).

This is the pre-optimization implementation of the simplex tableau,
kept verbatim as the *reference arithmetic* for the sparse
integer-scaled :class:`repro.ilp.tableau.Tableau`.  When cross-check
mode is enabled (``repro.ilp.tableau.set_cross_check(True)`` or the
``REPRO_ILP_CROSSCHECK=1`` environment variable), every mutating
tableau operation is mirrored onto one of these shadows and the two
representations are compared entry by entry — any divergence raises
immediately, so the fast path is continuously validated against the
slow-but-obviously-correct one on small models.

Do not use this class on hot paths; it exists to be trusted, not fast.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from repro.errors import IlpError

ZERO = Fraction(0)
ONE = Fraction(1)


class DenseTableau:
    """Simplex tableau: ``rows[i][j]`` coefficients, ``rows[i][-1]`` rhs.

    ``cost[j]`` are reduced costs of a *minimization* objective;
    ``cost[-1]`` holds ``-z`` (so the objective value is ``-cost[-1]``).
    ``basis[i]`` is the column basic in row ``i``.
    """

    def __init__(self, rows: List[List[Fraction]], cost: List[Fraction],
                 basis: List[int]) -> None:
        if len(basis) != len(rows):
            raise IlpError("basis size must match row count")
        width = len(cost)
        for row in rows:
            if len(row) != width:
                raise IlpError("ragged tableau")
        self.rows = rows
        self.cost = cost
        self.basis = basis

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_cols(self) -> int:
        """Number of variable columns (excluding the rhs)."""
        return len(self.cost) - 1

    def rhs(self, i: int) -> Fraction:
        return self.rows[i][-1]

    def objective_value(self) -> Fraction:
        return -self.cost[-1]

    def copy(self) -> "DenseTableau":
        return DenseTableau([row[:] for row in self.rows], self.cost[:],
                            self.basis[:])

    def add_column(self, value: Fraction = ZERO) -> int:
        """Append a fresh column (zero everywhere); returns its index."""
        for row in self.rows:
            row.insert(-1, ZERO)
        self.cost.insert(-1, value)
        return self.n_cols - 1

    def add_row(self, coeffs: List[Fraction], rhs: Fraction,
                basic_col: int) -> int:
        """Append a row whose basic column is ``basic_col``."""
        if len(coeffs) != self.n_cols:
            raise IlpError("row width mismatch")
        self.rows.append(coeffs + [rhs])
        self.basis.append(basic_col)
        return self.n_rows - 1

    # ------------------------------------------------------------------
    def pivot(self, row: int, col: int) -> None:
        """Pivot so column ``col`` becomes basic in ``row``."""
        pivot_value = self.rows[row][col]
        if pivot_value == 0:
            raise IlpError("pivot on zero element")
        prow = self.rows[row]
        if pivot_value != ONE:
            inv = ONE / pivot_value
            self.rows[row] = prow = [x * inv for x in prow]
        for i, other in enumerate(self.rows):
            if i == row:
                continue
            factor = other[col]
            if factor:
                self.rows[i] = [a - factor * b for a, b in zip(other, prow)]
        factor = self.cost[col]
        if factor:
            self.cost = [a - factor * b for a, b in zip(self.cost, prow)]
        self.basis[row] = col

    # ------------------------------------------------------------------
    def apply_column_shift(self, col: int, amount: int) -> None:
        """Subtract ``amount`` times column ``col`` from the rhs column
        (the Equations 3.12 -> 3.13 lower-bound substitution)."""
        for row in self.rows:
            coef = row[col]
            if coef:
                row[-1] -= coef * amount
        if self.cost[col]:
            self.cost[-1] -= self.cost[col] * amount

    def price_out_basis(self) -> None:
        """Make every basic column's reduced cost zero."""
        for i in range(self.n_rows):
            coef = self.cost[self.basis[i]]
            if coef:
                self.cost = [a - coef * r
                             for a, r in zip(self.cost, self.rows[i])]

    # ------------------------------------------------------------------
    def basic_values(self) -> List[Tuple[int, Fraction]]:
        """(column, value) for every basic variable."""
        return [(self.basis[i], self.rows[i][-1])
                for i in range(self.n_rows)]

    def is_integral(self) -> bool:
        return all(self.rows[i][-1].denominator == 1
                   for i in range(self.n_rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DenseTableau(rows={self.n_rows}, cols={self.n_cols})"
