"""Integer linear programming substrate (implemented from scratch).

The dissertation solves its pin-allocation feasibility problem with
Gomory's 1960 *dual all-integer cutting plane* algorithm on a
dual-feasible all-integer tableau (Section 3.3), updating the tableau
incrementally as scheduling pins I/O operations to control-step groups
(Equations 3.12 -> 3.13).  The connection-synthesis ILPs of Chapters 4
and 6 were fed to external packages (Bozo, Lindo); here a two-phase
exact-rational primal simplex plus branch & bound stands in.

Everything computes over :class:`fractions.Fraction`, so results are
exact — no tolerance tuning, no cycling from round-off.
"""

from repro.ilp.model import (
    Model,
    Var,
    LinExpr,
    Constraint,
    Sense,
    SolveStatus,
    Solution,
    lsum,
)
from repro.ilp.simplex import solve_lp
from repro.ilp.branch_bound import solve_ilp
from repro.ilp.gomory import DualAllIntegerSolver
from repro.ilp.linearize import (
    linearize_max_binary,
    linearize_min_binary,
    linearize_xor,
    linearize_implies_zero,
    linearize_positive_iff,
    linearize_implies_ge,
)

__all__ = [
    "Model",
    "Var",
    "LinExpr",
    "Constraint",
    "Sense",
    "SolveStatus",
    "Solution",
    "lsum",
    "solve_lp",
    "solve_ilp",
    "DualAllIntegerSolver",
    "linearize_max_binary",
    "linearize_min_binary",
    "linearize_xor",
    "linearize_implies_zero",
    "linearize_positive_iff",
    "linearize_implies_ge",
]
