"""Integer linear programming substrate (implemented from scratch).

The dissertation solves its pin-allocation feasibility problem with
Gomory's 1960 *dual all-integer cutting plane* algorithm on a
dual-feasible all-integer tableau (Section 3.3), updating the tableau
incrementally as scheduling pins I/O operations to control-step groups
(Equations 3.12 -> 3.13).  The connection-synthesis ILPs of Chapters 4
and 6 were fed to external packages (Bozo, Lindo); here a two-phase
exact-rational primal simplex plus branch & bound stands in.

All arithmetic is exact rational — sparse integer-scaled rows (integer
numerators over one per-row denominator) on the hot paths, with the
original dense :class:`fractions.Fraction` tableau retained as a
cross-checkable reference (:func:`set_cross_check`) — so results carry
no tolerance tuning and no cycling from round-off.  Feasibility probes
backtrack through an undo journal instead of copying tableaus, and
:mod:`repro.perf` counts pivots/cuts/rollbacks for the benchmark
harness.
"""

from repro.ilp.model import (
    Model,
    Var,
    LinExpr,
    Constraint,
    Sense,
    SolveStatus,
    Solution,
    lsum,
)
from repro.ilp.simplex import solve_lp
from repro.ilp.branch_bound import solve_ilp
from repro.ilp.gomory import (DualAllIntegerSolver, WarmBasis,
                              build_initial, structure_signature)
from repro.ilp.tableau import Tableau, cross_check_enabled, set_cross_check
from repro.ilp.dense_tableau import DenseTableau
from repro.ilp.linearize import (
    linearize_max_binary,
    linearize_min_binary,
    linearize_xor,
    linearize_implies_zero,
    linearize_positive_iff,
    linearize_implies_ge,
)

__all__ = [
    "Model",
    "Var",
    "LinExpr",
    "Constraint",
    "Sense",
    "SolveStatus",
    "Solution",
    "lsum",
    "solve_lp",
    "solve_ilp",
    "DualAllIntegerSolver",
    "WarmBasis",
    "build_initial",
    "structure_signature",
    "Tableau",
    "DenseTableau",
    "set_cross_check",
    "cross_check_enabled",
    "linearize_max_binary",
    "linearize_min_binary",
    "linearize_xor",
    "linearize_implies_zero",
    "linearize_positive_iff",
    "linearize_implies_ge",
]
