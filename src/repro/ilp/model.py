"""Modelling layer for (integer) linear programs.

A tiny algebraic front end: variables combine into linear expressions
with ``+ - *``; comparing an expression to a number (or another
expression) yields a :class:`Constraint`.  The model collects variables,
constraints and an objective, and is consumed by the solvers in
:mod:`repro.ilp.simplex`, :mod:`repro.ilp.branch_bound` and
:mod:`repro.ilp.gomory`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import IlpError

Number = Union[int, float, Fraction]


def _frac(x: Number) -> Fraction:
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, float):
        return Fraction(x).limit_denominator(10 ** 9)
    raise IlpError(f"cannot use {x!r} as a coefficient")


class Sense(enum.Enum):
    MINIMIZE = "min"
    MAXIMIZE = "max"


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration-limit"


@dataclass(frozen=True)
class Var:
    """A decision variable.

    ``lb``/``ub`` are simple bounds (``ub=None`` means +inf); solvers
    treat them natively where possible.  ``integer=True`` restricts to
    integers, the common case in this library (binary variables are
    integers with bounds 0..1).
    """

    index: int
    name: str
    lb: Fraction
    ub: Optional[Fraction]
    integer: bool

    # -- algebra --------------------------------------------------------
    def _expr(self) -> "LinExpr":
        return LinExpr({self.index: Fraction(1)}, Fraction(0))

    def __add__(self, other): return self._expr() + other
    def __radd__(self, other): return self._expr() + other
    def __sub__(self, other): return self._expr() - other
    def __rsub__(self, other): return (-1) * self._expr() + other
    def __mul__(self, other): return self._expr() * other
    def __rmul__(self, other): return self._expr() * other
    def __neg__(self): return self._expr() * -1

    def __le__(self, other): return self._expr() <= other
    def __ge__(self, other): return self._expr() >= other
    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Var):
            return self.index == other.index
        return self._expr() == other

    def __hash__(self) -> int:
        return hash(("Var", self.index))

    def __repr__(self) -> str:
        return self.name


class LinExpr:
    """A linear expression ``sum(coef * var) + const`` over Fractions."""

    __slots__ = ("terms", "const")

    def __init__(self, terms: Optional[Mapping[int, Fraction]] = None,
                 const: Number = 0) -> None:
        self.terms: Dict[int, Fraction] = dict(terms or {})
        self.const: Fraction = _frac(const)

    @staticmethod
    def _coerce(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return value._expr()
        return LinExpr({}, _frac(value))

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.const)

    def __add__(self, other) -> "LinExpr":
        rhs = self._coerce(other)
        out = self.copy()
        for idx, coef in rhs.terms.items():
            out.terms[idx] = out.terms.get(idx, Fraction(0)) + coef
            if out.terms[idx] == 0:
                del out.terms[idx]
        out.const += rhs.const
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (self._coerce(other) * -1)

    def __rsub__(self, other) -> "LinExpr":
        return self._coerce(other) + (self * -1)

    def __mul__(self, scalar) -> "LinExpr":
        k = _frac(scalar)
        return LinExpr({i: c * k for i, c in self.terms.items() if c * k},
                       self.const * k)

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1

    def __le__(self, other) -> "Constraint":
        return Constraint(self - other, "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - other, ">=")

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - other, "==")

    def __hash__(self):  # expressions are mutable-ish; no hashing
        raise TypeError("LinExpr is unhashable")

    def value(self, assignment: Mapping[int, Fraction]) -> Fraction:
        total = self.const
        for idx, coef in self.terms.items():
            total += coef * assignment.get(idx, Fraction(0))
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{coef}*x{idx}" for idx, coef in sorted(self.terms.items())]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


@dataclass
class Constraint:
    """``expr (op) 0`` where op is <=, >= or ==; rhs folded into expr."""

    expr: LinExpr
    op: str
    name: str = ""

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">=", "=="):
            raise IlpError(f"bad constraint operator {self.op!r}")

    def named(self, name: str) -> "Constraint":
        self.name = name
        return self

    def satisfied(self, assignment: Mapping[int, Fraction],
                  tol: Fraction = Fraction(0)) -> bool:
        lhs = self.expr.value(assignment)
        if self.op == "<=":
            return lhs <= tol
        if self.op == ">=":
            return lhs >= -tol
        return -tol <= lhs <= tol

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.expr!r} {self.op} 0"


@dataclass
class Solution:
    """Result of a solve: status, objective and variable values."""

    status: SolveStatus
    objective: Optional[Fraction] = None
    values: Dict[int, Fraction] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def __getitem__(self, var: Var) -> Fraction:
        return self.values.get(var.index, Fraction(0))

    def as_int(self, var: Var) -> int:
        value = self[var]
        if value.denominator != 1:
            raise IlpError(f"{var.name} = {value} is not integral")
        return int(value)


class Model:
    """A (mixed) integer linear program."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.vars: List[Var] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense: Sense = Sense.MINIMIZE
        self._names: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def add_var(self, name: str, lb: Number = 0, ub: Optional[Number] = None,
                integer: bool = True) -> Var:
        if name in self._names:
            raise IlpError(f"duplicate variable name {name!r}")
        lower = _frac(lb)
        upper = None if ub is None else _frac(ub)
        if upper is not None and upper < lower:
            raise IlpError(f"variable {name!r}: ub {upper} < lb {lower}")
        var = Var(len(self.vars), name, lower, upper, integer)
        self.vars.append(var)
        self._names[name] = var.index
        return var

    def binary(self, name: str) -> Var:
        return self.add_var(name, 0, 1, integer=True)

    def var_by_name(self, name: str) -> Var:
        try:
            return self.vars[self._names[name]]
        except KeyError:
            raise IlpError(f"unknown variable {name!r}") from None

    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_all(self, constraints: Iterable[Constraint]) -> None:
        for constraint in constraints:
            self.add(constraint)

    def minimize(self, expr) -> None:
        self.objective = LinExpr._coerce(expr)
        self.sense = Sense.MINIMIZE

    def maximize(self, expr) -> None:
        self.objective = LinExpr._coerce(expr)
        self.sense = Sense.MAXIMIZE

    # ------------------------------------------------------------------
    def stats(self) -> Tuple[int, int, int]:
        """(variables, integer variables, constraints) — tableau sizing."""
        n_int = sum(1 for v in self.vars if v.integer)
        return len(self.vars), n_int, len(self.constraints)

    def check(self, assignment: Mapping[int, Fraction]) -> bool:
        """Verify an assignment against bounds and all constraints."""
        for var in self.vars:
            value = assignment.get(var.index, Fraction(0))
            if value < var.lb:
                return False
            if var.ub is not None and value > var.ub:
                return False
            if var.integer and value.denominator != 1:
                return False
        return all(c.satisfied(assignment) for c in self.constraints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n, n_int, m = self.stats()
        return (f"Model({self.name!r}, vars={n} ({n_int} int), "
                f"constraints={m})")


def lsum(items) -> LinExpr:
    """Sum of variables/expressions as a LinExpr (like ``sum`` but typed)."""
    total = LinExpr()
    for item in items:
        total = total + item
    return total
