"""Dense exact-rational simplex tableau.

One shared structure serves the two-phase primal simplex, the dual
simplex, and the Gomory dual all-integer cutting-plane algorithm: ``m``
constraint rows over ``n`` columns plus a right-hand side, a cost row of
reduced costs, and an explicit basis.  All arithmetic is over
:class:`fractions.Fraction` so pivoting is exact; pivots on ``±1``
(guaranteed by the all-integer cut construction) preserve integrality of
every entry.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from repro.errors import IlpError

ZERO = Fraction(0)
ONE = Fraction(1)


class Tableau:
    """Simplex tableau: ``rows[i][j]`` coefficients, ``rows[i][-1]`` rhs.

    ``cost[j]`` are reduced costs of a *minimization* objective;
    ``cost[-1]`` holds ``-z`` (so the objective value is ``-cost[-1]``).
    ``basis[i]`` is the column basic in row ``i``.
    """

    def __init__(self, rows: List[List[Fraction]], cost: List[Fraction],
                 basis: List[int]) -> None:
        if len(basis) != len(rows):
            raise IlpError("basis size must match row count")
        width = len(cost)
        for row in rows:
            if len(row) != width:
                raise IlpError("ragged tableau")
        self.rows = rows
        self.cost = cost
        self.basis = basis

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_cols(self) -> int:
        """Number of variable columns (excluding the rhs)."""
        return len(self.cost) - 1

    def rhs(self, i: int) -> Fraction:
        return self.rows[i][-1]

    def objective_value(self) -> Fraction:
        return -self.cost[-1]

    def copy(self) -> "Tableau":
        return Tableau([row[:] for row in self.rows], self.cost[:],
                       self.basis[:])

    def add_column(self, value: Fraction = ZERO) -> int:
        """Append a fresh column (zero everywhere); returns its index."""
        for row in self.rows:
            row.insert(-1, ZERO)
        self.cost.insert(-1, value)
        return self.n_cols - 1

    def add_row(self, coeffs: List[Fraction], rhs: Fraction,
                basic_col: int) -> int:
        """Append a row whose basic column is ``basic_col``."""
        if len(coeffs) != self.n_cols:
            raise IlpError("row width mismatch")
        self.rows.append(coeffs + [rhs])
        self.basis.append(basic_col)
        return self.n_rows - 1

    # ------------------------------------------------------------------
    def pivot(self, row: int, col: int) -> None:
        """Pivot so column ``col`` becomes basic in ``row``."""
        pivot_value = self.rows[row][col]
        if pivot_value == 0:
            raise IlpError("pivot on zero element")
        prow = self.rows[row]
        if pivot_value != ONE:
            inv = ONE / pivot_value
            self.rows[row] = prow = [x * inv for x in prow]
        for i, other in enumerate(self.rows):
            if i == row:
                continue
            factor = other[col]
            if factor:
                self.rows[i] = [a - factor * b for a, b in zip(other, prow)]
        factor = self.cost[col]
        if factor:
            self.cost = [a - factor * b for a, b in zip(self.cost, prow)]
        self.basis[row] = col

    # ------------------------------------------------------------------
    def primal_simplex(self, max_iter: int = 100_000,
                       banned: Optional[set] = None) -> str:
        """Minimize with Bland's rule from a primal-feasible basis.

        ``banned`` columns never *enter* the basis (used to retire the
        phase-1 artificial variables — later pivots can make their
        reduced costs negative again, and letting one back in would
        silently relax its constraint).  Returns ``"optimal"`` or
        ``"unbounded"``.
        """
        for _ in range(max_iter):
            entering = None
            for j in range(self.n_cols):
                if banned is not None and j in banned:
                    continue
                if self.cost[j] < 0:
                    entering = j
                    break
            if entering is None:
                return "optimal"
            leaving = None
            best: Optional[Fraction] = None
            for i in range(self.n_rows):
                coef = self.rows[i][entering]
                if coef > 0:
                    ratio = self.rows[i][-1] / coef
                    if (best is None or ratio < best
                            or (ratio == best
                                and self.basis[i] < self.basis[leaving])):
                        best = ratio
                        leaving = i
            if leaving is None:
                return "unbounded"
            self.pivot(leaving, entering)
        raise IlpError("primal simplex iteration limit exceeded")

    def dual_simplex(self, max_iter: int = 100_000) -> str:
        """Restore primal feasibility from a dual-feasible tableau.

        Returns ``"optimal"`` or ``"infeasible"``.
        """
        for _ in range(max_iter):
            leaving = None
            most_negative: Optional[Fraction] = None
            for i in range(self.n_rows):
                value = self.rows[i][-1]
                if value < 0 and (most_negative is None
                                  or value < most_negative):
                    most_negative = value
                    leaving = i
            if leaving is None:
                return "optimal"
            entering = None
            best: Optional[Fraction] = None
            for j in range(self.n_cols):
                coef = self.rows[leaving][j]
                if coef < 0:
                    ratio = self.cost[j] / (-coef)
                    if best is None or ratio < best or (
                            ratio == best and (entering is None
                                               or j < entering)):
                        best = ratio
                        entering = j
            if entering is None:
                return "infeasible"
            self.pivot(leaving, entering)
        raise IlpError("dual simplex iteration limit exceeded")

    # ------------------------------------------------------------------
    def basic_values(self) -> List[Tuple[int, Fraction]]:
        """(column, value) for every basic variable."""
        return [(self.basis[i], self.rows[i][-1])
                for i in range(self.n_rows)]

    def is_integral(self) -> bool:
        return all(self.rows[i][-1].denominator == 1
                   for i in range(self.n_rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tableau(rows={self.n_rows}, cols={self.n_cols})"
