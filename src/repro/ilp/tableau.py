"""Sparse integer-scaled exact simplex tableau.

One shared structure serves the two-phase primal simplex, the dual
simplex, and the Gomory dual all-integer cutting-plane algorithm.  Each
constraint row is stored as a dict of *integer numerators* over the
row's nonzero columns plus one positive per-row denominator, so the
entry value is ``nums[j] / den`` — exact rational arithmetic without a
:class:`fractions.Fraction` (and its per-cell gcd) in any inner loop:

* all-integer pivots (the Gomory path pivots on ``±1``) stay pure
  integer adds/multiplies over the union of two sparsity patterns;
* fractional pivots scale the touched row once and re-normalize it with
  a *single* lazy gcd pass (early exit on gcd 1) instead of reducing
  every cell independently;
* zero columns are skipped entirely — rows never materialize them.

Ratio tests compare exact rationals by integer cross-multiplication, so
pivot choices (Bland's rule, dual ratio tie-breaks) are identical to the
dense Fraction implementation, which is preserved in
:mod:`repro.ilp.dense_tableau` and can shadow every operation here via
cross-check mode (see :func:`set_cross_check`).

Undo journal
------------
``mark()`` / ``undo_to(mark)`` give snapshot-free backtracking: pivots
replace row dicts copy-on-write and log the displaced dict references,
so rolling back costs O(touched rows) pointer restores instead of the
O(rows x cols) full-tableau copies the old ``snapshot()/restore()``
protocol paid on *every* feasibility probe.
"""

from __future__ import annotations

import os
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Tuple

from repro.errors import IlpError
from repro.perf import PERF

ZERO = Fraction(0)
ONE = Fraction(1)

#: When True, every Tableau mirrors its operations onto a
#: :class:`repro.ilp.dense_tableau.DenseTableau` shadow and compares the
#: two after each mutation.  Debug only — dense arithmetic is the cost
#: this module exists to remove.
_CROSS_CHECK = bool(int(os.environ.get("REPRO_ILP_CROSSCHECK", "0") or 0))


def set_cross_check(enabled: bool) -> None:
    """Globally enable/disable the dense-Fraction shadow cross-check."""
    global _CROSS_CHECK
    _CROSS_CHECK = bool(enabled)


def cross_check_enabled() -> bool:
    return _CROSS_CHECK


def _scale_to_ints(coeffs: Dict[int, Fraction],
                   rhs: Fraction) -> Tuple[Dict[int, int], int, int]:
    """(integer numerators, rhs numerator, denominator) for a row."""
    den = rhs.denominator if isinstance(rhs, Fraction) else 1
    for c in coeffs.values():
        if isinstance(c, Fraction) and c.denominator != 1:
            den = den * c.denominator // gcd(den, c.denominator)
    nums = {j: int(c * den) for j, c in coeffs.items() if c}
    return nums, int(rhs * den), den


class Tableau:
    """Sparse integer-scaled simplex tableau.

    Row ``i`` holds value ``_nums[i][j] / _dens[i]`` in column ``j``
    (missing keys are zero) and rhs ``_rhs_num[i] / _dens[i]``.  The
    cost row uses the same scheme; ``_cost_rhs / _cost_den`` holds
    ``-z``.  ``basis[i]`` is the column basic in row ``i``.
    """

    __slots__ = ("_nums", "_rhs_num", "_dens", "_cost_nums", "_cost_rhs",
                 "_cost_den", "basis", "_n_cols", "_journal", "_shadow")

    def __init__(self, rows: Optional[List[List[Fraction]]] = None,
                 cost: Optional[List[Fraction]] = None,
                 basis: Optional[List[int]] = None) -> None:
        """Dense-compatible constructor (``rows[i][-1]`` is the rhs)."""
        rows = rows or []
        cost = cost if cost is not None else [ZERO]
        basis = basis or []
        if len(basis) != len(rows):
            raise IlpError("basis size must match row count")
        width = len(cost)
        for row in rows:
            if len(row) != width:
                raise IlpError("ragged tableau")
        n_cols = width - 1
        self._nums: List[Dict[int, int]] = []
        self._rhs_num: List[int] = []
        self._dens: List[int] = []
        for row in rows:
            coeffs = {j: Fraction(row[j]) for j in range(n_cols) if row[j]}
            nums, rhs_num, den = _scale_to_ints(coeffs, Fraction(row[-1]))
            self._nums.append(nums)
            self._rhs_num.append(rhs_num)
            self._dens.append(den)
        ccoeffs = {j: Fraction(cost[j]) for j in range(n_cols) if cost[j]}
        self._cost_nums, self._cost_rhs, self._cost_den = \
            _scale_to_ints(ccoeffs, Fraction(cost[-1]))
        self.basis = list(basis)
        self._n_cols = n_cols
        self._journal: Optional[list] = None
        self._shadow = None
        self._init_shadow()

    @classmethod
    def from_sparse(cls, n_cols: int, rows: List[Tuple[Dict[int, int], int]],
                    cost: Dict[int, int], basis: List[int],
                    dens: Optional[List[int]] = None) -> "Tableau":
        """Build directly from integer-scaled sparse data (no conversion).

        ``dens`` optionally gives the per-row denominator (default 1 —
        the all-integer case); row ``i``'s entry ``j`` is then
        ``rows[i][0][j] / dens[i]``.
        """
        tab = cls.__new__(cls)
        if len(basis) != len(rows):
            raise IlpError("basis size must match row count")
        if dens is not None and len(dens) != len(rows):
            raise IlpError("dens size must match row count")
        tab._nums = []
        tab._rhs_num = []
        tab._dens = []
        for i, (coeffs, rhs) in enumerate(rows):
            for j in coeffs:
                if not 0 <= j < n_cols:
                    raise IlpError(f"column {j} out of range")
            tab._nums.append({j: c for j, c in coeffs.items() if c})
            tab._rhs_num.append(rhs)
            tab._dens.append(1 if dens is None else dens[i])
        tab._cost_nums = {j: c for j, c in cost.items() if c}
        tab._cost_rhs = 0
        tab._cost_den = 1
        tab.basis = list(basis)
        tab._n_cols = n_cols
        tab._journal = None
        tab._shadow = None
        tab._init_shadow()
        return tab

    # -- cross-check shadow --------------------------------------------
    def _init_shadow(self) -> None:
        if _CROSS_CHECK:
            from repro.ilp.dense_tableau import DenseTableau
            self._shadow = DenseTableau(self.rows, self.cost,
                                        list(self.basis))

    def _rebuild_shadow(self) -> None:
        if self._shadow is not None:
            self._init_shadow()

    def _check_shadow(self, what: str) -> None:
        if self._shadow is None:
            return
        if (self.rows != self._shadow.rows
                or self.cost != self._shadow.cost
                or self.basis != self._shadow.basis):
            raise IlpError(
                f"cross-check mismatch after {what}: sparse "
                "integer-scaled tableau diverged from the dense "
                "Fraction reference")

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self._nums)

    @property
    def n_cols(self) -> int:
        """Number of variable columns (excluding the rhs)."""
        return self._n_cols

    @property
    def rows(self) -> List[List[Fraction]]:
        """Dense Fraction view (reconstruction; debugging/tests only)."""
        out = []
        for i in range(len(self._nums)):
            den = self._dens[i]
            nums = self._nums[i]
            row = [Fraction(nums.get(j, 0), den)
                   for j in range(self._n_cols)]
            row.append(Fraction(self._rhs_num[i], den))
            out.append(row)
        return out

    @property
    def cost(self) -> List[Fraction]:
        """Dense Fraction view of the cost row (reconstruction)."""
        den = self._cost_den
        row = [Fraction(self._cost_nums.get(j, 0), den)
               for j in range(self._n_cols)]
        row.append(Fraction(self._cost_rhs, den))
        return row

    def entry(self, i: int, j: int) -> Fraction:
        return Fraction(self._nums[i].get(j, 0), self._dens[i])

    def rhs(self, i: int) -> Fraction:
        return Fraction(self._rhs_num[i], self._dens[i])

    def cost_entry(self, j: int) -> Fraction:
        return Fraction(self._cost_nums.get(j, 0), self._cost_den)

    def objective_value(self) -> Fraction:
        return -Fraction(self._cost_rhs, self._cost_den)

    def copy(self) -> "Tableau":
        tab = Tableau.__new__(Tableau)
        tab._nums = [dict(r) for r in self._nums]
        tab._rhs_num = list(self._rhs_num)
        tab._dens = list(self._dens)
        tab._cost_nums = dict(self._cost_nums)
        tab._cost_rhs = self._cost_rhs
        tab._cost_den = self._cost_den
        tab.basis = list(self.basis)
        tab._n_cols = self._n_cols
        tab._journal = [] if self._journal is not None else None
        tab._shadow = None
        tab._init_shadow()
        return tab

    # -- undo journal ---------------------------------------------------
    def enable_undo(self) -> None:
        if self._journal is None:
            self._journal = []

    def mark(self) -> int:
        """Checkpoint for :meth:`undo_to` (enables the journal)."""
        if self._journal is None:
            self._journal = []
        return len(self._journal)

    def journal_clear(self) -> None:
        """Forget all checkpoints (after a committed state change)."""
        if self._journal is not None:
            self._journal.clear()

    def undo_to(self, mark: int) -> None:
        """Roll back to a :meth:`mark` in O(entries touched since)."""
        journal = self._journal
        if journal is None:
            raise IlpError("undo journal is not enabled")
        PERF.inc("tableau.rollbacks")
        nums, rhs, dens = self._nums, self._rhs_num, self._dens
        while len(journal) > mark:
            entry = journal.pop()
            tag = entry[0]
            if tag == "row":
                _, i, row_nums, row_rhs, row_den = entry
                nums[i] = row_nums
                rhs[i] = row_rhs
                dens[i] = row_den
            elif tag == "rhsnum":
                rhs[entry[1]] = entry[2]
            elif tag == "basis":
                self.basis[entry[1]] = entry[2]
            elif tag == "cost":
                _, cost_nums, cost_rhs, cost_den = entry
                self._cost_nums = cost_nums
                self._cost_rhs = cost_rhs
                self._cost_den = cost_den
            elif tag == "costrhs":
                self._cost_rhs = entry[1]
            elif tag == "addrow":
                nums.pop()
                rhs.pop()
                dens.pop()
                self.basis.pop()
            elif tag == "addcol":
                self._n_cols -= 1
                self._cost_nums.pop(self._n_cols, None)
            else:  # pragma: no cover - defensive
                raise IlpError(f"unknown journal tag {tag!r}")
        if self._shadow is not None:
            self._rebuild_shadow()

    # -- structural edits -----------------------------------------------
    def add_column(self, value: int = 0) -> int:
        """Append a fresh column (zero everywhere); returns its index."""
        col = self._n_cols
        self._n_cols = col + 1
        if self._journal is not None:
            self._journal.append(("addcol",))
        if value:
            num, den = self._as_ratio(value)
            self._set_cost_entry(col, num, den)
        if self._shadow is not None:
            self._shadow.add_column(Fraction(value))
            self._check_shadow("add_column")
        return col

    @staticmethod
    def _as_ratio(value) -> Tuple[int, int]:
        if isinstance(value, int):
            return value, 1
        frac = Fraction(value)
        return frac.numerator, frac.denominator

    def _set_cost_entry(self, col: int, num: int, den: int) -> None:
        # Rescale the cost row so the new entry is representable.
        if den != self._cost_den:
            lcm = self._cost_den * den // gcd(self._cost_den, den)
            scale = lcm // self._cost_den
            new_cost = {j: v * scale for j, v in self._cost_nums.items()}
            new_rhs = self._cost_rhs * scale
            new_cost[col] = num * (lcm // den)
            if self._journal is not None:
                self._journal.append(("cost", self._cost_nums,
                                      self._cost_rhs, self._cost_den))
            self._cost_nums, self._cost_rhs, self._cost_den = \
                new_cost, new_rhs, lcm
        else:
            new_cost = dict(self._cost_nums)
            new_cost[col] = num
            if self._journal is not None:
                self._journal.append(("cost", self._cost_nums,
                                      self._cost_rhs, self._cost_den))
            self._cost_nums = new_cost

    def add_row(self, coeffs: Dict[int, int], rhs: int,
                basic_col: int, den: int = 1) -> int:
        """Append an integer-scaled sparse row basic in ``basic_col``."""
        for j in coeffs:
            if not 0 <= j < self._n_cols:
                raise IlpError(f"column {j} out of range")
        self._nums.append({j: c for j, c in coeffs.items() if c})
        self._rhs_num.append(rhs)
        self._dens.append(den)
        self.basis.append(basic_col)
        if self._journal is not None:
            self._journal.append(("addrow",))
        if self._shadow is not None:
            dense = [Fraction(coeffs.get(j, 0), den)
                     for j in range(self._n_cols)]
            self._shadow.add_row(dense, Fraction(rhs, den), basic_col)
            self._check_shadow("add_row")
        return len(self._nums) - 1

    def set_cost_sparse(self, cost: Dict[int, int], rhs: int = 0,
                        den: int = 1) -> None:
        """Install a new cost row (integer-scaled sparse)."""
        if self._journal is not None:
            self._journal.append(("cost", self._cost_nums,
                                  self._cost_rhs, self._cost_den))
        self._cost_nums = {j: c for j, c in cost.items() if c}
        self._cost_rhs = rhs
        self._cost_den = den
        if self._shadow is not None:
            self._shadow.cost = self.cost
            self._check_shadow("set_cost_sparse")

    # ------------------------------------------------------------------
    def pivot(self, row: int, col: int) -> None:
        """Pivot so column ``col`` becomes basic in ``row``.

        Copy-on-write: every touched row gets a fresh dict and the
        displaced dict goes to the journal, so rollback is a pointer
        restore.  All-integer pivots (``den == 1``, pivot value ``±1``)
        never leave the integer fast path.
        """
        PERF.inc("tableau.pivots")
        nums, rhs, dens = self._nums, self._rhs_num, self._dens
        journal = self._journal
        prow = nums[row]
        p_num = prow.get(col, 0)
        if p_num == 0:
            raise IlpError("pivot on zero element")
        if journal is not None:
            journal.append(("row", row, prow, rhs[row], dens[row]))
        # Normalize the pivot row: new value_j = old_j / pivot, i.e.
        # numerators stay put and the denominator becomes |p_num|.
        if p_num < 0:
            new_p = {j: -v for j, v in prow.items()}
            p_rhs = -rhs[row]
            p_den = -p_num
        else:
            new_p = dict(prow)
            p_rhs = rhs[row]
            p_den = p_num
        if p_den != 1:
            g = gcd(p_den, p_rhs)
            if g != 1:
                for v in new_p.values():
                    g = gcd(g, v)
                    if g == 1:
                        break
            if g > 1:
                new_p = {j: v // g for j, v in new_p.items()}
                p_rhs //= g
                p_den //= g
        nums[row] = new_p
        rhs[row] = p_rhs
        dens[row] = p_den

        # Eliminate ``col`` from every other row.
        p_items = list(new_p.items())
        for i in range(len(nums)):
            if i == row:
                continue
            orow = nums[i]
            f = orow.get(col, 0)
            if f == 0:
                continue
            if journal is not None:
                journal.append(("row", i, orow, rhs[i], dens[i]))
            if p_den == 1:
                # value_j = (o_j - f * p_j) / dens[i]: pure-integer path.
                d = dict(orow)
                for j, v in p_items:
                    nv = d.get(j, 0) - f * v
                    if nv:
                        d[j] = nv
                    else:
                        d.pop(j, None)
                nums[i] = d
                rhs[i] = rhs[i] - f * p_rhs
            else:
                # value_j = (o_j * p_den - f * p_j) / (dens[i] * p_den),
                # then one lazy gcd pass over the merged row.
                d = {j: v * p_den for j, v in orow.items()}
                for j, v in p_items:
                    nv = d.get(j, 0) - f * v
                    if nv:
                        d[j] = nv
                    else:
                        d.pop(j, None)
                new_rhs = rhs[i] * p_den - f * p_rhs
                new_den = dens[i] * p_den
                g = gcd(new_den, new_rhs)
                if g != 1:
                    for v in d.values():
                        g = gcd(g, v)
                        if g == 1:
                            break
                if g > 1:
                    d = {j: v // g for j, v in d.items()}
                    new_rhs //= g
                    new_den //= g
                nums[i] = d
                rhs[i] = new_rhs
                dens[i] = new_den

        # Cost row elimination.
        cf = self._cost_nums.get(col, 0)
        if cf:
            if journal is not None:
                journal.append(("cost", self._cost_nums, self._cost_rhs,
                                self._cost_den))
            if p_den == 1:
                d = dict(self._cost_nums)
                for j, v in p_items:
                    nv = d.get(j, 0) - cf * v
                    if nv:
                        d[j] = nv
                    else:
                        d.pop(j, None)
                self._cost_nums = d
                self._cost_rhs = self._cost_rhs - cf * p_rhs
            else:
                d = {j: v * p_den for j, v in self._cost_nums.items()}
                for j, v in p_items:
                    nv = d.get(j, 0) - cf * v
                    if nv:
                        d[j] = nv
                    else:
                        d.pop(j, None)
                new_rhs = self._cost_rhs * p_den - cf * p_rhs
                new_den = self._cost_den * p_den
                g = gcd(new_den, new_rhs)
                if g != 1:
                    for v in d.values():
                        g = gcd(g, v)
                        if g == 1:
                            break
                if g > 1:
                    d = {j: v // g for j, v in d.items()}
                    new_rhs //= g
                    new_den //= g
                self._cost_nums = d
                self._cost_rhs = new_rhs
                self._cost_den = new_den

        if journal is not None:
            journal.append(("basis", row, self.basis[row]))
        self.basis[row] = col
        if self._shadow is not None:
            self._shadow.pivot(row, col)
            self._check_shadow("pivot")

    # ------------------------------------------------------------------
    def apply_column_shift(self, col: int, amount: int) -> None:
        """Subtract ``amount`` times column ``col`` from the rhs column
        — the Equations 3.12 -> 3.13 lower-bound substitution."""
        journal = self._journal
        nums, rhs = self._nums, self._rhs_num
        for i in range(len(nums)):
            v = nums[i].get(col, 0)
            if v:
                if journal is not None:
                    journal.append(("rhsnum", i, rhs[i]))
                rhs[i] = rhs[i] - v * amount
        cv = self._cost_nums.get(col, 0)
        if cv:
            if journal is not None:
                journal.append(("costrhs", self._cost_rhs))
            self._cost_rhs -= cv * amount
        if self._shadow is not None:
            self._shadow.apply_column_shift(col, amount)
            self._check_shadow("apply_column_shift")

    def price_out_basis(self) -> None:
        """Zero the reduced cost of every basic column."""
        for i in range(len(self._nums)):
            b = self.basis[i]
            c = self._cost_nums.get(b, 0)
            if c:
                self._subtract_scaled_row_from_cost(i, c)
        if self._shadow is not None:
            self._check_shadow("price_out_basis")

    def _subtract_scaled_row_from_cost(self, i: int, c_num: int) -> None:
        """cost -= (c_num / cost_den) * row_i, exactly."""
        den_i = self._dens[i]
        if self._journal is not None:
            self._journal.append(("cost", self._cost_nums, self._cost_rhs,
                                  self._cost_den))
        if den_i == 1:
            d = dict(self._cost_nums)
            for j, v in self._nums[i].items():
                nv = d.get(j, 0) - c_num * v
                if nv:
                    d[j] = nv
                else:
                    d.pop(j, None)
            self._cost_nums = d
            self._cost_rhs = self._cost_rhs - c_num * self._rhs_num[i]
        else:
            d = {j: v * den_i for j, v in self._cost_nums.items()}
            for j, v in self._nums[i].items():
                nv = d.get(j, 0) - c_num * v
                if nv:
                    d[j] = nv
                else:
                    d.pop(j, None)
            new_rhs = self._cost_rhs * den_i - c_num * self._rhs_num[i]
            new_den = self._cost_den * den_i
            g = gcd(new_den, new_rhs)
            if g != 1:
                for v in d.values():
                    g = gcd(g, v)
                    if g == 1:
                        break
            if g > 1:
                d = {j: v // g for j, v in d.items()}
                new_rhs //= g
                new_den //= g
            self._cost_nums = d
            self._cost_rhs = new_rhs
            self._cost_den = new_den
        if self._shadow is not None:
            coef = self._shadow.cost[self.basis[i]]
            if coef:
                self._shadow.cost = [
                    a - coef * r
                    for a, r in zip(self._shadow.cost, self._shadow.rows[i])]

    # ------------------------------------------------------------------
    def primal_simplex(self, max_iter: int = 100_000,
                       banned: Optional[set] = None) -> str:
        """Minimize with Bland's rule from a primal-feasible basis.

        ``banned`` columns never *enter* the basis (used to retire the
        phase-1 artificial variables — later pivots can make their
        reduced costs negative again, and letting one back in would
        silently relax its constraint).  Returns ``"optimal"`` or
        ``"unbounded"``.
        """
        nums, rhs = self._nums, self._rhs_num
        for _ in range(max_iter):
            # Bland: smallest column index with a negative reduced cost
            # (cost_den > 0, so the numerator sign is the value sign).
            entering = None
            for j, v in self._cost_nums.items():
                if v < 0 and (banned is None or j not in banned):
                    if entering is None or j < entering:
                        entering = j
            if entering is None:
                return "optimal"
            leaving = None
            best_num = best_den = 0
            for i in range(len(nums)):
                coef = nums[i].get(entering, 0)
                if coef > 0:
                    # ratio = rhs_i / coef_i (the row den cancels);
                    # cross-multiply to compare exactly.
                    rn = rhs[i]
                    if leaving is None:
                        best_num, best_den, leaving = rn, coef, i
                    else:
                        lhs = rn * best_den
                        rhs_cmp = best_num * coef
                        if lhs < rhs_cmp or (
                                lhs == rhs_cmp
                                and self.basis[i] < self.basis[leaving]):
                            best_num, best_den, leaving = rn, coef, i
            if leaving is None:
                return "unbounded"
            self.pivot(leaving, entering)
        raise IlpError("primal simplex iteration limit exceeded")

    def dual_simplex(self, max_iter: int = 100_000) -> str:
        """Restore primal feasibility from a dual-feasible tableau.

        Returns ``"optimal"`` or ``"infeasible"``.
        """
        nums, rhs, dens = self._nums, self._rhs_num, self._dens
        for _ in range(max_iter):
            # Most-negative-rhs row (cross-multiplied: dens positive).
            leaving = None
            for i in range(len(nums)):
                if rhs[i] < 0 and (
                        leaving is None
                        or rhs[i] * dens[leaving]
                        < rhs[leaving] * dens[i]):
                    leaving = i
            if leaving is None:
                return "optimal"
            # Entering column: min cost_j / (-coef_j) over negative
            # coefficients; the shared row den cancels, so compare
            # cost numerators against negated coefficient numerators.
            entering = None
            best_cn = best_cd = 0
            for j, coef in nums[leaving].items():
                if coef < 0:
                    cn = self._cost_nums.get(j, 0)
                    cd = -coef
                    if entering is None:
                        best_cn, best_cd, entering = cn, cd, j
                    else:
                        lhs = cn * best_cd
                        rhs_cmp = best_cn * cd
                        if lhs < rhs_cmp or (lhs == rhs_cmp
                                             and j < entering):
                            best_cn, best_cd, entering = cn, cd, j
            if entering is None:
                return "infeasible"
            self.pivot(leaving, entering)
        raise IlpError("dual simplex iteration limit exceeded")

    # ------------------------------------------------------------------
    def basic_values(self) -> List[Tuple[int, Fraction]]:
        """(column, value) for every basic variable — one pass."""
        rhs, dens = self._rhs_num, self._dens
        return [(self.basis[i], Fraction(rhs[i], dens[i]))
                for i in range(len(rhs))]

    def integral_basic_values(self) -> Optional[Dict[int, int]]:
        """Basic values as ints, or None as soon as one is fractional.

        Single pass with early exit — callers that need "is the basis
        integral, and if so what is it" avoid scanning twice.
        """
        out: Dict[int, int] = {}
        rhs, dens = self._rhs_num, self._dens
        for i in range(len(rhs)):
            den = dens[i]
            if den == 1:
                out[self.basis[i]] = rhs[i]
            else:
                if rhs[i] % den:
                    return None
                out[self.basis[i]] = rhs[i] // den
        return out

    def is_integral(self) -> bool:
        """Early-exit scan of the rhs column only."""
        rhs, dens = self._rhs_num, self._dens
        for i in range(len(rhs)):
            if dens[i] != 1 and rhs[i] % dens[i]:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tableau(rows={self.n_rows}, cols={self.n_cols})"
