"""Linearization helpers for the Chapter 6 ILP (Section 6.1.1.4).

Each helper adds the constraints to the model and returns them, so the
connection-synthesis formulations read close to the dissertation's
equations: max/min of binaries, exclusive-or, and the big-M implication
forms ``(C >= 2) => (I = 0)``, ``(I > 0) <=> (B = 1)`` and
``(B = 1) => (I_x >= I_y)``.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.ilp.model import Constraint, LinExpr, Model, Var

ExprLike = Union[Var, LinExpr]


def linearize_max_binary(model: Model, target: Var,
                         items: Sequence[ExprLike],
                         exact: bool = True) -> List[Constraint]:
    """``target >= max(items)``; with ``exact`` also ``target <= sum``.

    For binary variables ``target <= sum(items)`` forces target to zero
    when every item is zero, yielding ``target == max(items)``.
    """
    added = [model.add(target >= item) for item in items]
    if exact:
        total = LinExpr()
        for item in items:
            total = total + item
        added.append(model.add(target <= total))
    return added


def linearize_min_binary(model: Model, target: Var,
                         items: Sequence[ExprLike],
                         exact: bool = True) -> List[Constraint]:
    """``target <= min(items)``; with ``exact`` also the n-1 lower bound."""
    added = [model.add(target <= item) for item in items]
    if exact:
        total = LinExpr()
        for item in items:
            total = total + item
        added.append(model.add(target >= total - (len(items) - 1)))
    return added


def linearize_xor(model: Model, target: Var, x: ExprLike,
                  y: ExprLike) -> List[Constraint]:
    """``target == x XOR y`` for binaries (== max(x,y) - min(x,y))."""
    return [
        model.add(target >= x - y),
        model.add(target >= y - x),
        model.add(target <= x + y),
        model.add(target <= 2 - x - y),
    ]


def linearize_implies_zero(model: Model, counter: ExprLike,
                           expr: ExprLike, threshold: int,
                           big_m: int) -> List[Constraint]:
    """``(counter >= threshold) => (expr == 0)`` for ``expr >= 0``.

    Realized as ``(threshold - counter) * M >= expr`` (the text's
    ``(2 - C) M >= I_x`` with threshold 2).
    """
    lhs = (threshold - LinExpr._coerce(counter)) * big_m
    return [model.add(lhs >= expr)]


def linearize_positive_iff(model: Model, amount: ExprLike, flag: Var,
                           big_m: int) -> List[Constraint]:
    """``(amount > 0) <=> (flag == 1)`` for integer ``amount >= 0``."""
    return [
        model.add(LinExpr._coerce(amount) <= big_m * flag),
        model.add(LinExpr._coerce(amount) >= flag),
    ]


def linearize_implies_ge(model: Model, flag: Var, bigger: ExprLike,
                         smaller: ExprLike, big_m: int) -> List[Constraint]:
    """``(flag == 1) => (bigger >= smaller)`` via big-M relaxation."""
    rhs = LinExpr._coerce(smaller) - (1 - flag) * big_m
    return [model.add(LinExpr._coerce(bigger) >= rhs)]
