"""Exception hierarchy for the repro synthesis library.

All library-raised errors derive from :class:`ReproError` so callers can
catch every synthesis failure with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class CdfgError(ReproError):
    """Structural problem in a control/data-flow graph."""


class ValidationError(CdfgError):
    """A CDFG (or partitioning of one) violates a model assumption."""


class PartitionError(ReproError):
    """Problem with a partitioning (unknown partition, bad cut, ...)."""


class ModuleLibraryError(ReproError):
    """Problem with the hardware module library (missing module, ...)."""


class IlpError(ReproError):
    """Problem while building or solving an integer linear program."""


class InfeasibleError(IlpError):
    """An (I)LP or a synthesis subproblem has no feasible solution."""


class UnboundedError(IlpError):
    """A linear program is unbounded (should not occur in our models)."""


class SchedulingError(ReproError):
    """The scheduler could not produce a schedule under the constraints."""


class ConnectionError_(ReproError):
    """Interchip connection synthesis failed.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`ConnectionError` (the OS-level one), which would be a trap for
    callers writing ``except ConnectionError``.
    """


class BusAssignmentError(ReproError):
    """No valid assignment of an I/O operation to a communication bus."""
