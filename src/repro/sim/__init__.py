"""Functional simulation of synthesized multi-chip designs.

Two engines cross-check each other:

* :mod:`repro.sim.behavioral` evaluates the CDFG per execution instance
  (the golden reference), honoring data-recursive edges by reading
  values produced ``d`` instances earlier;
* :mod:`repro.sim.pipeline` runs the *synthesized* design cycle by
  cycle: every pipeline instance executes its scheduled operations,
  interchip values physically ride their assigned bus segments, and two
  different values driving the same wires in the same cycle is a hard
  error — so a passing run is a dynamic proof of the conflict-freedom
  that Theorem 3.1 / the bus allocator promise statically.
"""

from repro.sim.behavioral import evaluate_behavior
from repro.sim.pipeline import PipelineSimulator, simulate_result
from repro.sim.rtl_sim import (RegisterHazard, simulate_registers,
                               simulate_result_registers)

__all__ = [
    "evaluate_behavior",
    "PipelineSimulator",
    "simulate_result",
    "RegisterHazard",
    "simulate_registers",
    "simulate_result_registers",
]
