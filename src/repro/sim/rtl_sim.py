"""Register-level simulation: dynamic validation of the RTL binding.

Where :mod:`repro.sim.pipeline` checks schedules and buses, this engine
checks the *storage*: every value physically lives in the register(s)
:func:`repro.rtl.binding.allocate_registers` assigned it, writes happen
at the producer's completion step, and every read asserts the register
still holds the right instance's value — so an under-allocated register
(two live values sharing one, or too few copies for a long-lived value
in a deep pipeline) surfaces as a concrete overwrite hazard, not a
silent wrong answer.

Chained values (consumed combinationally within their producing step)
legitimately have no register and are read from a bypass wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cdfg.graph import Cdfg
from repro.cdfg.ops import OpKind
from repro.errors import ReproError
from repro.rtl.binding import RegisterAllocation, allocate_registers
from repro.scheduling.base import Schedule
from repro.sim.behavioral import (default_branch_outcome,
                                  evaluate_behavior, guard_satisfied)


class RegisterHazard(ReproError):
    """A register read observed a value it should no longer hold."""


@dataclass
class RtlSimulationReport:
    n_instances: int
    register_reads: int
    register_writes: int
    bypass_reads: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.n_instances} instances: "
                f"{self.register_writes} register writes, "
                f"{self.register_reads} register reads verified, "
                f"{self.bypass_reads} chained bypasses")


def simulate_registers(graph: Cdfg, schedule: Schedule,
                       inputs: Mapping[str, List[int]],
                       n_instances: int,
                       registers: Optional[RegisterAllocation] = None,
                       const_values: Optional[Mapping[str, int]] = None
                       ) -> RtlSimulationReport:
    """Run the design at register granularity and verify every read."""
    registers = registers or allocate_registers(graph, schedule)
    golden = evaluate_behavior(graph, inputs, n_instances, const_values,
                               default_branch_outcome)
    L = schedule.initiation_rate

    #: physical register -> (producer, instance, value)
    regfile: Dict[Tuple[int, int], Tuple[str, int, int]] = {}
    reads = writes = bypasses = 0

    # Event list: (absolute step, order, kind, node, instance).
    events: List[Tuple[int, int, int, str, int]] = []
    for instance in range(n_instances):
        base = instance * L
        for name, step in schedule.start_step.items():
            node = graph.node(name)
            if node.is_free():
                continue
            start = base + step
            # Reads happen at start (order 0), writes at completion
            # (order 1), so a same-step read-then-overwrite is legal.
            events.append((start, 0, 0, name, instance))
            end = base + schedule.end_step(name)
            events.append((end, 1, 1, name, instance))
    events.sort()

    for _step, _order, kind, name, instance in events:
        node = graph.node(name)
        if not guard_satisfied(node, instance):
            continue  # branch not taken this instance
        if kind == 1:
            # Write the produced value into this instance's register.
            regs = registers.regs_of.get(name)
            if regs is None:
                continue  # chained or unconsumed: no storage
            reg = regs[instance % len(regs)]
            regfile[reg] = (name, instance, golden[instance][name])
            writes += 1
            continue
        # Read every stored operand and verify it.
        for edge in graph.in_edges(name):
            src = graph.node(edge.src)
            if src.is_free():
                continue
            src_instance = instance - edge.degree
            if src_instance < 0:
                continue  # pipeline fill: registers reset to zero
            if edge.src not in golden[src_instance]:
                continue  # producer's branch not taken
            regs = registers.regs_of.get(edge.src)
            if regs is None:
                bypasses += 1  # combinational chain, no register
                continue
            reg = regs[src_instance % len(regs)]
            stored = regfile.get(reg)
            expected = golden[src_instance][edge.src]
            if stored is None:
                raise RegisterHazard(
                    f"{name!r} (instance {instance}) reads register "
                    f"{reg} before {edge.src!r} ever wrote it")
            owner, owner_instance, value = stored
            if owner != edge.src or owner_instance != src_instance \
                    or value != expected:
                raise RegisterHazard(
                    f"{name!r} (instance {instance}) expected "
                    f"{edge.src!r}@{src_instance} in register {reg} "
                    f"but found {owner!r}@{owner_instance} — the "
                    f"allocation under-provisioned this lifetime")
            reads += 1
    return RtlSimulationReport(
        n_instances=n_instances,
        register_reads=reads,
        register_writes=writes,
        bypass_reads=bypasses,
    )


def simulate_result_registers(result, n_instances: int = 8,
                              seed: int = 0) -> RtlSimulationReport:
    """Register-level run of a SynthesisResult with random stimuli."""
    import random

    rng = random.Random(seed)
    inputs: Dict[str, List[int]] = {}
    series: Dict[str, List[int]] = {}
    for node in result.graph.io_nodes():
        if node.source_partition != 0:
            continue
        key = node.value or node.name
        if key not in series:
            series[key] = [rng.randrange(1 << min(node.bit_width, 16))
                           for _ in range(n_instances)]
        inputs[node.name] = series[key]
    return simulate_registers(result.graph, result.schedule, inputs,
                              n_instances)
