"""Cycle-accurate simulation of a synthesized multi-chip design.

The simulator launches a new pipeline instance every ``L`` control
steps and executes each instance's operations at the absolute times the
schedule dictates.  Three classes of dynamic checks run continuously:

* **data availability** — an operand must have been produced (at
  nanosecond precision, so illegal chaining or multi-cycle overlap is
  caught even if the static checks were bypassed);
* **bus conflict-freedom** — an interchip value physically occupies its
  assigned bus segments for one cycle; two *different* values driving
  the same wires in the same cycle abort the run;
* **result correctness** — every transferred and output value must
  match the golden behavioral trace instance by instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cdfg.analysis import _EPS
from repro.cdfg.graph import Cdfg, Node
from repro.cdfg.ops import OpKind
from repro.core.interconnect import BusAssignment, Interconnect
from repro.errors import ReproError
from repro.scheduling.base import Schedule
from repro.sim.behavioral import (_apply, _mask, default_branch_outcome,
                                  evaluate_behavior, guard_satisfied)


class SimulationError(ReproError):
    """A dynamic check failed during cycle-accurate simulation."""


@dataclass
class SimulationReport:
    """Outcome of a pipeline simulation run."""

    n_instances: int
    steps_simulated: int
    transfers_checked: int
    values_checked: int
    bus_drives: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.n_instances} instances over "
                f"{self.steps_simulated} steps: "
                f"{self.values_checked} values and "
                f"{self.transfers_checked} transfers verified, "
                f"{self.bus_drives} bus drives conflict-free")


class PipelineSimulator:
    """Construct once per design; :meth:`run` simulates and verifies."""

    def __init__(self,
                 graph: Cdfg,
                 schedule: Schedule,
                 interconnect: Optional[Interconnect] = None,
                 assignment: Optional[BusAssignment] = None,
                 simple_allocation=None) -> None:
        """``simple_allocation`` accepts a Chapter-3
        :class:`~repro.core.simple_connection.SimpleConnectionResult`:
        its bit-level bundle allocation is driven instead of
        segment-level bus assignments (a transfer's bits may straddle a
        dedicated bundle and the shared bundle C)."""
        self.graph = graph
        self.schedule = schedule
        self.L = schedule.initiation_rate
        self.interconnect = interconnect
        self.assignment = assignment
        self.simple_allocation = simple_allocation
        if (interconnect is None) != (assignment is None):
            raise SimulationError(
                "interconnect and assignment must be given together")
        if simple_allocation is not None and interconnect is not None:
            raise SimulationError(
                "give either a bus assignment or a simple allocation")

    # ------------------------------------------------------------------
    def run(self, inputs: Mapping[str, List[int]], n_instances: int,
            const_values: Optional[Mapping[str, int]] = None,
            branch_outcome=default_branch_outcome) -> SimulationReport:
        graph = self.graph
        schedule = self.schedule
        period = schedule.timing.clock_period
        golden = evaluate_behavior(graph, inputs, n_instances,
                                   const_values, branch_outcome)

        #: (instance, node) -> (value, absolute availability in ns)
        store: Dict[Tuple[int, str], Tuple[int, float]] = {}
        transfers_checked = 0
        values_checked = 0
        bus_drives = 0

        # Pre-sort each instance's operations by (step, ns start).
        ops_by_step: Dict[int, List[str]] = {}
        for name, step in schedule.start_step.items():
            ops_by_step.setdefault(step, []).append(name)
        for step in ops_by_step:
            ops_by_step[step].sort(key=lambda n: (schedule.start_ns[n],
                                                  n))
        pipe = max(schedule.start_step.values(), default=0) + 4

        last_step = n_instances * self.L + pipe
        for tau in range(last_step + 1):
            #: (bus, segment) -> (value key, int value) driven this cycle
            wires: Dict[Tuple[int, int], Tuple[str, int]] = {}
            for instance in range(n_instances):
                local = tau - instance * self.L
                if local < 0 or local not in ops_by_step:
                    continue
                for name in ops_by_step[local]:
                    node = graph.node(name)
                    if not guard_satisfied(node, instance,
                                           branch_outcome):
                        continue  # branch not taken this instance
                    value = self._execute(node, instance, tau, store,
                                          golden, inputs, const_values)
                    if node.kind is OpKind.IO:
                        bus_drives += self._drive(node, instance, tau,
                                                  value, wires)
                        transfers_checked += 1
                        expected = golden[instance][name]
                        if value != expected:
                            raise SimulationError(
                                f"instance {instance}: transfer "
                                f"{name!r} carried {value}, golden "
                                f"trace says {expected}")
                    values_checked += 1
                    if golden[instance].get(name) != value:
                        raise SimulationError(
                            f"instance {instance}: {name!r} computed "
                            f"{value}, golden {golden[instance][name]}")
        return SimulationReport(
            n_instances=n_instances,
            steps_simulated=last_step + 1,
            transfers_checked=transfers_checked,
            values_checked=values_checked,
            bus_drives=bus_drives,
        )

    # ------------------------------------------------------------------
    def _execute(self, node: Node, instance: int, tau: int,
                 store, golden, inputs, const_values) -> int:
        schedule = self.schedule
        period = schedule.timing.clock_period
        start_abs_ns = instance * self.L * period \
            + schedule.start_ns[node.name]
        operands: List[int] = []
        for edge in self.graph.in_edges(node.name):
            src_node = self.graph.node(edge.src)
            if edge.is_recursive():
                past = instance - edge.degree
                if past < 0:
                    operands.append(0)
                    continue
                if edge.src not in golden[past]:
                    continue  # producer's branch not taken then
                operands.append(self._read(edge.src, past,
                                           start_abs_ns, store))
            elif src_node.kind is OpKind.CONSTANT:
                operands.append(_mask((const_values or {}).get(
                    edge.src, 1), src_node.bit_width))
            elif src_node.is_free():
                # split/merge wiring: defer to the golden trace (their
                # semantics are pure rewiring).
                operands.append(golden[instance][edge.src]
                                if edge.src in golden[instance] else 0)
            elif edge.src not in golden[instance]:
                continue  # producer's branch not taken this instance
            else:
                operands.append(self._read(edge.src, instance,
                                           start_abs_ns, store))

        if node.kind is OpKind.IO and node.source_partition == 0 \
                and node.name in inputs:
            value = _mask(inputs[node.name][instance], node.bit_width)
        elif node.kind in (OpKind.IO, OpKind.INPUT, OpKind.OUTPUT):
            value = _mask(operands[0] if operands else 0,
                          node.bit_width)
        else:
            value = _apply(node, operands)

        finish_abs_ns = instance * self.L * period \
            + schedule.finish_ns(node.name)
        store[(instance, node.name)] = (value, finish_abs_ns)
        return value

    def _read(self, name: str, instance: int, when_ns: float,
              store) -> int:
        entry = store.get((instance, name))
        if entry is None:
            raise SimulationError(
                f"instance {instance}: {name!r} read before it was "
                f"ever produced")
        value, available_ns = entry
        if available_ns > when_ns + _EPS:
            raise SimulationError(
                f"instance {instance}: {name!r} read at "
                f"{when_ns:.1f} ns but only available at "
                f"{available_ns:.1f} ns")
        return value

    def _drive(self, node: Node, instance: int, tau: int, value: int,
               wires: Dict[Tuple[int, int], Tuple[str, int]]) -> int:
        """Put the transfer on its bus wires; detect conflicts."""
        if self.simple_allocation is not None:
            return self._drive_simple(node, tau, value, wires)
        if self.interconnect is None or self.assignment is None:
            return 0
        if node.name not in self.assignment.bus_of:
            raise SimulationError(
                f"transfer {node.name!r} has no bus assignment")
        bus_index, segment = self.assignment.of(node.name)
        bus = self.interconnect.bus(bus_index)
        if not bus.capable(node, segment):
            raise SimulationError(
                f"bus {bus_index} cannot physically carry {node.name!r}")
        key = node.value or node.name
        drives = 0
        for seg in bus.segments_spanned(node, segment):
            wire = (bus_index, seg)
            if wire in wires:
                other_key, other_value = wires[wire]
                if other_key != key or other_value != value:
                    raise SimulationError(
                        f"cycle {tau}: bus {bus_index} segment {seg} "
                        f"driven with {key}={value} and "
                        f"{other_key}={other_value} simultaneously")
            else:
                wires[wire] = (key, value)
                drives += 1
        return drives


    def _drive_simple(self, node: Node, tau: int, value: int,
                      wires) -> int:
        """Chapter-3 bundles: bit-sliced occupancy per (bus, cycle).

        Different values may legitimately share a bundle's wires in one
        cycle (the proof of Theorem 3.1 routes overflow bits of several
        values through connection C); the invariant is that the *total*
        bits on a bundle never exceed its width, with transfers of one
        value in one step counted once (shared drive).
        """
        alloc = self.simple_allocation.allocation.get(node.name)
        if alloc is None:
            raise SimulationError(
                f"transfer {node.name!r} has no bundle allocation")
        key = (node.value or node.name, value)
        drives = 0
        for bus_index, bits in alloc:
            bus = self.simple_allocation.interconnect.bus(bus_index)
            wire = ("simple", bus_index)
            loads = wires.setdefault(wire, {})
            previous = loads.get(key, 0)
            loads[key] = max(previous, bits)
            total = sum(loads.values())
            if total > bus.width:
                raise SimulationError(
                    f"cycle {tau}: bundle {bus_index} carries {total} "
                    f"bits on {bus.width} wires")
            if previous == 0:
                drives += 1
        return drives


def simulate_result(result, n_instances: int = 8,
                    seed: int = 0) -> SimulationReport:
    """Simulate a :class:`~repro.core.flow.SynthesisResult` end to end.

    Random per-instance stimuli are generated for every external input
    value (transfers of one value get identical series), the behavioral
    reference is computed, and the pipeline is run with all dynamic
    checks on.
    """
    rng = random.Random(seed)
    graph = result.graph
    series_by_value: Dict[str, List[int]] = {}
    inputs: Dict[str, List[int]] = {}
    for node in graph.io_nodes():
        if node.source_partition != 0:
            continue
        key = node.value or node.name
        if key not in series_by_value:
            series_by_value[key] = [
                rng.randrange(1 << min(node.bit_width, 16))
                for _ in range(n_instances)]
        inputs[node.name] = series_by_value[key]
    simulator = PipelineSimulator(
        graph, result.schedule, result.interconnect, result.assignment,
        simple_allocation=getattr(result, "simple_allocation", None))
    return simulator.run(inputs, n_instances)
