"""Golden-reference behavioral evaluation of a CDFG.

Each *execution instance* ``n`` evaluates the whole graph once.
External inputs are supplied per instance; data-recursive edges of
degree ``d`` read the producer's value from instance ``n - d`` (zero
before the pipeline fills — matching hardware registers that reset to
zero).  Operation semantics are word-level modular arithmetic; unknown
operation types fall back to a deterministic mixing function so any
``op_type`` simulates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.cdfg.analysis import topological_order
from repro.cdfg.graph import Cdfg, Node
from repro.cdfg.ops import OpKind
from repro.errors import CdfgError

#: instance -> {node name -> value}
Trace = List[Dict[str, int]]


def _mask(value: int, bits: int) -> int:
    return value & ((1 << max(1, bits)) - 1)


def _apply(node: Node, operands: List[int]) -> int:
    if node.op_type == "add":
        return _mask(sum(operands), node.bit_width)
    if node.op_type == "sub":
        total = operands[0] if operands else 0
        for operand in operands[1:]:
            total -= operand
        return _mask(total, node.bit_width)
    if node.op_type == "mul":
        total = 1
        for operand in operands:
            total *= operand
        return _mask(total, node.bit_width)
    # Deterministic mixing for cmp/shift/custom types.
    total = hash(node.op_type) & 0xFFFF
    for operand in operands:
        total = (total * 31 + operand) & 0xFFFFFFFF
    return _mask(total, node.bit_width)


def default_branch_outcome(instance: int, var: str) -> bool:
    """Deterministic pseudo-random branch outcome per instance."""
    return (hash((instance, var)) & 1) == 1


def guard_satisfied(node: Node, instance: int,
                    outcome=default_branch_outcome) -> bool:
    """Whether the node executes in this instance (Section 7.2)."""
    return all(outcome(instance, var) == taken
               for var, taken in node.guard)


def evaluate_behavior(graph: Cdfg,
                      inputs: Mapping[str, List[int]],
                      n_instances: int,
                      const_values: Optional[Mapping[str, int]] = None,
                      branch_outcome=default_branch_outcome) -> Trace:
    """Evaluate ``n_instances`` executions of the graph.

    ``inputs`` maps the name of each *external* I/O node (source
    partition 0) or INPUT node to its per-instance value list.
    Guarded operations execute only when ``branch_outcome(instance,
    var)`` matches their guard; skipped operations are absent from the
    instance's trace, and a consumer simply ignores missing operands
    (join/mux semantics).  Returns the per-instance value trace.
    """
    order = topological_order(graph)
    consts = dict(const_values or {})
    trace: Trace = []
    for instance in range(n_instances):
        values: Dict[str, int] = {}
        for name in order:
            node = graph.node(name)
            if not guard_satisfied(node, instance, branch_outcome):
                continue
            if node.kind is OpKind.CONSTANT:
                values[name] = _mask(consts.get(name, 1), node.bit_width)
                continue
            if name in inputs:
                series = inputs[name]
                if instance >= len(series):
                    raise CdfgError(
                        f"input {name!r} has no value for instance "
                        f"{instance}")
                values[name] = _mask(series[instance], node.bit_width)
                continue
            operands: List[int] = []
            for edge in graph.in_edges(name):
                if edge.is_recursive():
                    past = instance - edge.degree
                    if past >= 0 and edge.src in trace[past]:
                        operands.append(trace[past][edge.src])
                    elif past < 0:
                        operands.append(0)
                elif edge.src in values:
                    operands.append(values[edge.src])
                # else: the producer's branch was not taken — skip.
            if node.kind in (OpKind.IO, OpKind.INPUT, OpKind.OUTPUT,
                             OpKind.SPLIT, OpKind.MERGE):
                # Transfers and wiring pass their (single) operand on;
                # SPLIT/MERGE semantics are bit-slicing, modelled here
                # as identity on the masked value.
                values[name] = _mask(operands[0] if operands else 0,
                                     node.bit_width)
            else:
                values[name] = _apply(node, operands)
        trace.append(values)
    return trace


def external_input_names(graph: Cdfg) -> List[str]:
    """I/O nodes fed by the outside world (need user-supplied data)."""
    names = []
    for node in graph.io_nodes():
        if node.source_partition == 0:
            names.append(node.name)
    for node in graph.nodes():
        if node.kind is OpKind.INPUT:
            names.append(node.name)
    return sorted(names)
