"""Pareto-frontier extraction over synthesis quality metrics.

Every explored point reduces to a small metric vector — chip count,
bus count, total pins, latency (pipe length), wall time — and *all*
axes are minimized.  The frontier is the set of non-dominated points:
nobody else is at least as good everywhere and strictly better
somewhere.  Ties are kept: two points with identical metric vectors do
not dominate each other, so both survive (they are genuinely different
designs with the same cost).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

#: Default minimization objectives, in report order.
OBJECTIVES: Tuple[str, ...] = ("chips", "buses", "total_pins",
                               "latency", "wall_ms")

#: Objectives safe for *predictive* dominance pruning of queued jobs:
#: wall time is excluded because a queued job's optimistic wall time is
#: zero, which would let any completed point survive comparison and
#: never prune anything meaningful — and because wall time is noise,
#: not design quality.
PRUNE_OBJECTIVES: Tuple[str, ...] = ("chips", "buses", "total_pins",
                                     "latency")


def dominates(a: Mapping[str, float], b: Mapping[str, float],
              objectives: Sequence[str] = OBJECTIVES) -> bool:
    """True iff ``a`` is <= ``b`` on every objective and < on one.

    Missing metrics count as infinitely bad, so a point that never
    produced (say) a bus count can be dominated but never dominate on
    that axis.
    """
    strictly_better = False
    for key in objectives:
        va = a.get(key, float("inf"))
        vb = b.get(key, float("inf"))
        if va > vb:
            return False
        if va < vb:
            strictly_better = True
    return strictly_better


def pareto_front(points: Sequence[Mapping[str, float]],
                 objectives: Sequence[str] = OBJECTIVES) -> List[int]:
    """Indices of the non-dominated points, ascending.

    O(n^2) pairwise sweep — explorer sweeps are hundreds of points,
    not millions, and the simple form keeps tie semantics obvious.
    Degenerate cases behave sensibly: an empty input yields an empty
    front; a single-objective front is every point achieving the
    minimum (all ties kept); identical vectors all survive.
    """
    front: List[int] = []
    for i, candidate in enumerate(points):
        if not any(dominates(other, candidate, objectives)
                   for j, other in enumerate(points) if j != i):
            front.append(i)
    return front


def front_summary(points: Sequence[Mapping[str, float]],
                  objectives: Sequence[str] = OBJECTIVES
                  ) -> Dict[str, Dict[str, float]]:
    """Per-objective min/max over a (front) point set, for reports."""
    out: Dict[str, Dict[str, float]] = {}
    for key in objectives:
        values = [p[key] for p in points if key in p]
        if values:
            out[key] = {"min": min(values), "max": max(values)}
    return out
