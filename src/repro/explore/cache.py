"""Persistent, content-addressed result cache for explorer sweeps.

Stdlib-only JSON-lines store: one line per solved point, keyed by the
canonical content hash from :mod:`repro.explore.keys`.  Append-only —
re-runs and overlapping sweeps skip any point whose key is already
present, which is what makes iterating on a sweep spec cheap (only the
new corner of the grid is synthesized).

Robustness rules:

* loading tolerates corrupt or truncated lines (a killed run can leave
  a partial last line) — bad lines are counted, not fatal;
* only *completed* records (``ok`` / ``degraded``) are persisted:
  ``error`` and ``budget_exhausted`` outcomes depend on the carved
  deadline of that particular run and must be retried, not replayed;
* writes are single ``O_APPEND`` lines in canonical form, so two
  explorer processes sharing a cache file interleave whole records;
* ``sync=True`` (opt-in; the synthesis service uses it) fsyncs every
  append, so an acknowledged write survives a killed process — the
  default stays buffered because sweep re-runs can always re-solve;
* :meth:`ResultCache.compact` atomically rewrites the file down to the
  live index: the append-only, last-write-wins format means long-lived
  multi-writer caches accumulate dead duplicate lines that cost load
  time but carry no information.
"""

from __future__ import annotations

import copy
import json
import os
import threading
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.io_json import canonical_dumps

#: Record line format version.
CACHE_VERSION = 1

#: ``--cache`` specs with this prefix mount the cluster's shared cache
#: server instead of a local file (see :func:`open_result_cache`).
REMOTE_SCHEME = "remote://"

#: Statuses worth persisting (see module docstring).
CACHEABLE_STATUSES = ("ok", "degraded")


def _ends_mid_line(path: str) -> bool:
    """Whether the file exists, is non-empty, and its last byte is
    not a newline — i.e. the tail is a torn (crash-truncated) line."""
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return False
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"
    except OSError:
        return False


class ResultCache:
    """In-memory index over an (optional) JSON-lines cache file."""

    def __init__(self, path: Optional[str] = None,
                 sync: bool = False) -> None:
        self.path = path
        self.sync = bool(sync)
        self._index: Dict[str, Dict[str, Any]] = {}
        #: Serializes put() appends against compact()'s read-merge-
        #: replace window so a concurrent append cannot be dropped.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.corrupt_lines = 0
        if path is not None and os.path.exists(path):
            self._index = self._read_file(path)

    # ------------------------------------------------------------------
    def _read_file(self, path: str) -> Dict[str, Dict[str, Any]]:
        """Parse the JSON-lines file; last write wins per key."""
        index: Dict[str, Dict[str, Any]] = {}
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                    record = entry["record"]
                    if entry.get("v") != CACHE_VERSION:
                        raise ValueError("version mismatch")
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                # Last write wins, matching append order.
                index[key] = record
        return index

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Deep copy of the cached record, counting hit/miss."""
        record = self._index.get(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return copy.deepcopy(record)

    def put(self, key: str, record: Dict[str, Any]) -> bool:
        """Persist a completed record; returns True if newly stored."""
        if record.get("status") not in CACHEABLE_STATUSES:
            return False
        # Per-run bookkeeping and warm-start transients (the exported
        # tableau basis, the oracle-store delta) do not belong in the
        # cache: they describe one process's solve, not the result.
        stored = {k: v for k, v in record.items()
                  if k not in ("cached", "warm_basis", "oracle_delta")}
        stored = copy.deepcopy(stored)
        with self._lock:
            if key in self._index:
                return False
            self._index[key] = stored
            if self.path is not None:
                line = canonical_dumps(
                    {"v": CACHE_VERSION, "key": key, "record": stored})
                # A crash mid-append leaves a torn last line with no
                # newline; appending straight after it would weld this
                # record onto the fragment and lose BOTH on reload.
                # Start on a fresh line so only the torn fragment is
                # sacrificed (the loader already skips it).
                if _ends_mid_line(self.path):
                    line = "\n" + line
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
                    if self.sync:
                        handle.flush()
                        os.fsync(handle.fileno())
        return True

    def items(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        return iter(self._index.items())

    # ------------------------------------------------------------------
    def compact(self) -> Dict[str, Any]:
        """Atomically rewrite the file down to the live records.

        Dead lines come from two places: another writer appending a key
        this process had already written (each side's in-memory index
        misses the other's line), and corrupt/truncated lines left by a
        killed run.  Compaction re-reads the file *under the append
        lock* and merges it with the in-memory index — so records
        appended concurrently (by another thread of this process, or by
        another process sharing the file) survive with last-write-wins
        semantics — then writes one canonical line per live entry to a
        temp file in the same directory, fsyncs it, and
        ``os.replace``\\ s it over the cache: readers either see the
        old file or the compacted one, never a partial rewrite.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> Dict[str, Any]:
        summary = {
            "path": self.path,
            "lines_before": 0,
            "entries": len(self._index),
            "removed": 0,
            "compacted": False,
        }
        if self.path is None:
            return summary
        exists = os.path.exists(self.path)
        if not exists and not self._index:
            return summary
        merged: Dict[str, Dict[str, Any]] = {}
        if exists:
            with open(self.path, "r", encoding="utf-8") as handle:
                summary["lines_before"] = sum(
                    1 for line in handle if line.strip())
            # The file is the authority on concurrent appends; index
            # entries missing from it (lost file, foreign truncation)
            # are added back on top.
            merged = self._read_file(self.path)
        for key, record in self._index.items():
            merged.setdefault(key, record)
        tmp_path = f"{self.path}.compact.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                for key, record in merged.items():
                    handle.write(canonical_dumps(
                        {"v": CACHE_VERSION, "key": key,
                         "record": record}) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
        self._index = merged
        self.corrupt_lines = 0
        summary["entries"] = len(merged)
        summary["removed"] = max(
            0, summary["lines_before"] - len(merged))
        summary["compacted"] = True
        return summary

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        lookups = self.hits + self.misses
        return {
            "entries": len(self._index),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (round(self.hits / lookups, 4)
                         if lookups else 0.0),
            "corrupt_lines": self.corrupt_lines,
        }


# ---------------------------------------------------------------------
def open_result_cache(spec: Optional[str],
                      sync: bool = False) -> ResultCache:
    """Build a cache from a ``--cache``-style spec.

    A plain path (or None) opens a local :class:`ResultCache`;
    ``remote://host:port`` mounts the cluster's shared cache server
    through :class:`repro.cluster.cache_client.ReadThroughCache`, which
    is itself a ResultCache — so the explorer, the service, and the
    cluster shards all consume whichever backend the spec names
    through one interface.
    """
    if spec is not None and spec.startswith(REMOTE_SCHEME):
        from repro.cluster.cache_client import ReadThroughCache
        return ReadThroughCache(spec[len(REMOTE_SCHEME):])
    return ResultCache(spec, sync=sync)
