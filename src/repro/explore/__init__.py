"""Parallel design-space exploration: spec -> jobs -> pool -> cache ->
Pareto frontier.

The dissertation's experiment tables are themselves sweeps — the same
design synthesized across pin budgets, port models, flows, initiation
rates, and sub-bus configurations.  This package makes that the
first-class workload:

* :class:`SweepSpec` / :class:`DesignSpace` — declarative grid +
  explicit-point axes, expanded deterministically into
  content-addressed :class:`SweepJob`\\ s (:mod:`repro.explore.spec`);
* :class:`Executor` — fan-out over a process worker pool with per-job
  deadline carving, cooperative cancellation of dominated queued
  points, and cross-process perf merging
  (:mod:`repro.explore.executor`);
* :class:`ResultCache` — persistent JSON-lines cache keyed by the
  canonical content hash of (graph, partitioning, rate, options), so
  re-runs and overlapping sweeps skip solved points
  (:mod:`repro.explore.cache`);
* :func:`pareto_front` — non-dominated extraction over (chips, buses,
  total pins, latency, wall time) (:mod:`repro.explore.pareto`);
* :func:`build_report` / :func:`explore` — the machine-readable report
  the ``repro explore`` CLI emits, validated against
  ``docs/schema/explore_report.schema.json``
  (:mod:`repro.explore.report`).
"""

from repro.explore.cache import ResultCache
from repro.explore.executor import ExploreResult, Executor
from repro.explore.keys import job_key, options_fingerprint
from repro.explore.pareto import (OBJECTIVES, dominates, front_summary,
                                  pareto_front)
from repro.explore.report import (REPORT_SCHEMA, build_report, explore,
                                  write_report)
from repro.explore.spec import (DesignSpace, SweepError, SweepJob,
                                SweepSpec, auto_partition_axis)

__all__ = [
    "DesignSpace",
    "SweepSpec",
    "SweepJob",
    "SweepError",
    "auto_partition_axis",
    "Executor",
    "ExploreResult",
    "ResultCache",
    "OBJECTIVES",
    "dominates",
    "pareto_front",
    "front_summary",
    "job_key",
    "options_fingerprint",
    "build_report",
    "write_report",
    "explore",
    "REPORT_SCHEMA",
]
