"""Canonical content hashing for explorer cache keys.

A sweep point is fully determined by *what is being synthesized*: the
CDFG, the partitioning (pin budgets, port model), the initiation rate,
the resolved synthesis options, the timing library, and any explicit
resource vector.  :func:`job_key` hashes the canonical JSON form of
exactly that tuple, so:

* the same point re-run in another process (or on another machine)
  maps to the same cache entry — canonical dumps are insertion-order
  and ``PYTHONHASHSEED`` independent;
* two sweeps that overlap share cache entries for the overlap;
* options a flow never reads are *normalized away* before hashing
  (:func:`options_fingerprint`), so e.g. a ``schedule-first`` point is
  cached once no matter which ``branching_factor`` the grid happened to
  carry alongside it.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Mapping, Optional

from repro.core.flow import SynthesisOptions
from repro.io_json import (canonical_dumps, graph_to_dict,
                           partitioning_to_dict)

#: Option fields each concrete flow actually reads; everything else is
#: dropped from the fingerprint so irrelevant grid axes do not split
#: cache entries.  ``auto`` keeps every field (its dispatch outcome
#: depends on the design, so nothing is provably irrelevant).
_FLOW_FIELDS = {
    "simple": ("pin_method", "scheduler"),
    "connection-first": ("branching_factor", "reassignment",
                         "subbus_sharing", "share_groups",
                         "slot_reserve", "conditional_sharing",
                         "scheduler"),
    "schedule-first": ("pipe_length", "bidirectional"),
}


def options_fingerprint(options: SynthesisOptions) -> Dict[str, Any]:
    """The flow-relevant subset of the options, as plain data.

    Scheduler spellings are canonicalized against the backend registry
    first, so a point swept under a deprecated alias shares its cache
    entry with the canonical name.
    """
    from repro.pipeline.registry import resolve_scheduler
    data = options.to_dict()
    data["scheduler"] = resolve_scheduler(data["scheduler"])
    fields = _FLOW_FIELDS.get(options.flow)
    if fields is None:
        return data
    out: Dict[str, Any] = {"flow": options.flow}
    for field in fields:
        out[field] = data[field]
    return out


def resources_fingerprint(resources: Optional[Mapping]) -> Optional[Dict]:
    """Resource vectors keyed ``(chip, op)`` -> plain ``"chip:op"``."""
    if resources is None:
        return None
    out: Dict[str, int] = {}
    for key, count in resources.items():
        if isinstance(key, tuple):
            key = f"{key[0]}:{key[1]}"
        out[str(key)] = int(count)
    return out


def job_key(graph, partitioning, rate: int,
            options: SynthesisOptions,
            timing: str = "ar",
            resources: Optional[Mapping] = None) -> str:
    """Content hash (sha256 hex) identifying one sweep point."""
    payload = {
        "v": 1,
        "graph": graph_to_dict(graph),
        "partitioning": partitioning_to_dict(partitioning),
        "rate": int(rate),
        "timing": timing,
        "options": options_fingerprint(options),
        "resources": resources_fingerprint(resources),
    }
    blob = canonical_dumps(payload).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
