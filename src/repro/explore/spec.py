"""Declarative sweep specifications and their expansion into jobs.

A :class:`SweepSpec` names *axes* (grid dimensions: each a list of
values) plus optional *explicit points* (dicts of overrides appended
after the grid), over a fixed :class:`DesignSpace` (graph +
partitioning + timing library).  Expansion is pure and deterministic:
axes multiply in their declaration order, every point gets a stable
``index``, human-readable ``params``, a materialized
:class:`repro.core.flow.SynthesisOptions`, and a canonical content
hash (:func:`repro.explore.keys.job_key`) that the result cache is
keyed by.

Recognized axes
---------------
``rate``              initiation rate (latency axis);
``flow``              ``auto`` / ``simple`` / ``connection-first`` /
                      ``schedule-first``;
``pin_scale``         multiply every chip's pin budget (port model and
                      chip set preserved);
``pin_budgets``       explicit ``{chip: pins}`` override;
``port_model``        ``unidirectional`` / ``bidirectional`` — rebuild
                      every chip spec with the given port model;
``subbus_sharing``    Chapter 6 sub-bus segments on/off;
``slot_reserve``      bus slots held back during connection synthesis;
``branching_factor``  connection-search beam width;
``scheduler``         any registered backend name (``list`` / ``heap``
                      / ``postpone`` / ``modulo`` plus third-party
                      registrations — see
                      :func:`repro.pipeline.scheduler_names`);
``pipe_length``       schedule-first pipe budget;
``auto_partition``    ``{"n_chips": k, "seed": s, ["pins": p,
                      "world_pins": w]}`` — run the
                      :func:`repro.partition.auto.partition_cdfg`
                      front end on a *flat* (unpartitioned, no I/O
                      nodes) graph and sweep partitioning variants.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.cdfg.graph import Cdfg
from repro.core.flow import SynthesisOptions
from repro.errors import ReproError
from repro.explore.keys import job_key, resources_fingerprint
from repro.explore.worker import resolve_timing
from repro.io_json import graph_to_dict, partitioning_to_dict
from repro.partition.model import (ChipSpec, OUTSIDE_WORLD,
                                   Partitioning)


class SweepError(ReproError):
    """Invalid sweep specification."""


#: Axis names :meth:`SweepSpec.expand` understands.
KNOWN_AXES = frozenset({
    "rate", "flow", "pin_scale", "pin_budgets", "port_model",
    "subbus_sharing", "slot_reserve", "branching_factor", "scheduler",
    "pipe_length", "auto_partition",
})

#: Params that become SynthesisOptions fields verbatim.
_OPTION_PARAMS = ("flow", "subbus_sharing", "slot_reserve",
                  "branching_factor", "scheduler", "pipe_length")


@dataclass(frozen=True)
class DesignSpace:
    """The fixed inputs a sweep varies around.

    ``resources_for`` (rate -> resource vector) covers designs whose
    module allocation depends on the initiation rate (the elliptic
    filter's published experiments fix resources per rate).
    """

    name: str
    graph: Cdfg
    partitioning: Partitioning
    timing: str = "ar"
    resources_for: Optional[Callable[[int], Mapping]] = None


@dataclass
class SweepJob:
    """One concrete, content-addressed synthesis job."""

    index: int
    params: Dict[str, Any]
    graph: Cdfg
    partitioning: Partitioning
    rate: int
    options: SynthesisOptions
    timing: str
    resources: Optional[Dict[str, int]]
    key: str
    #: Optimistic (lower-bound) metrics for dominance pruning.
    optimistic: Dict[str, float] = field(default_factory=dict)

    def payload(self, deadline_ms: Optional[float] = None
                ) -> Dict[str, Any]:
        """The plain-data form shipped to a pool worker."""
        return {
            "index": self.index,
            "key": self.key,
            "params": dict(self.params),
            "design": {
                "graph": graph_to_dict(self.graph),
                "partitioning": partitioning_to_dict(self.partitioning),
            },
            "rate": self.rate,
            "timing": self.timing,
            "options": self.options.to_dict(),
            "resources": self.resources,
            "deadline_ms": deadline_ms,
        }


class SweepSpec:
    """Grid axes + explicit points, expandable over a design space."""

    def __init__(self,
                 axes: Optional[Mapping[str, Sequence[Any]]] = None,
                 points: Sequence[Mapping[str, Any]] = (),
                 base: Optional[Mapping[str, Any]] = None) -> None:
        self.axes: Dict[str, List[Any]] = {}
        for name, values in (axes or {}).items():
            if name not in KNOWN_AXES:
                raise SweepError(
                    f"unknown sweep axis {name!r}; expected one of "
                    f"{sorted(KNOWN_AXES)}")
            values = list(values)
            if not values:
                raise SweepError(f"axis {name!r} has no values")
            self.axes[name] = values
        self.points: List[Dict[str, Any]] = [dict(p) for p in points]
        for point in self.points:
            for name in point:
                if name not in KNOWN_AXES:
                    raise SweepError(
                        f"unknown parameter {name!r} in explicit point")
        self.base: Dict[str, Any] = dict(base or {})
        for name in self.base:
            if name not in KNOWN_AXES:
                raise SweepError(f"unknown base parameter {name!r}")

    # ------------------------------------------------------------------
    def size(self) -> int:
        grid = 1
        for values in self.axes.values():
            grid *= len(values)
        if not self.axes:
            grid = 1 if not self.points else 0
        return grid + len(self.points)

    def param_points(self) -> List[Dict[str, Any]]:
        """Every point's params, grid first then explicit points."""
        out: List[Dict[str, Any]] = []
        if self.axes:
            names = list(self.axes)
            for combo in itertools.product(
                    *(self.axes[n] for n in names)):
                params = dict(self.base)
                params.update(zip(names, combo))
                out.append(params)
        elif not self.points:
            out.append(dict(self.base))
        for point in self.points:
            params = dict(self.base)
            params.update(point)
            out.append(params)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data summary for reports."""
        return {
            "axes": {name: list(values)
                     for name, values in self.axes.items()},
            "explicit_points": [dict(p) for p in self.points],
            "base": dict(self.base),
            "n_points": self.size(),
        }

    # ------------------------------------------------------------------
    def expand(self, design: DesignSpace) -> List[SweepJob]:
        """Materialize every point into a content-addressed job."""
        resolve_timing(design.timing)  # fail fast on unknown libraries
        jobs: List[SweepJob] = []
        for index, params in enumerate(self.param_points()):
            jobs.append(_materialize(design, params, index))
        return jobs


# ---------------------------------------------------------------------
def _materialize(design: DesignSpace, params: Mapping[str, Any],
                 index: int) -> SweepJob:
    graph = design.graph
    partitioning = design.partitioning

    auto = params.get("auto_partition")
    if auto is not None:
        graph, partitioning = _auto_partition(design, dict(auto))

    port_model = params.get("port_model")
    if port_model is not None:
        partitioning = with_port_model(partitioning, port_model)
    scale = params.get("pin_scale")
    if scale is not None:
        partitioning = scale_pins(partitioning, float(scale))
    budgets = params.get("pin_budgets")
    if budgets is not None:
        partitioning = partitioning.with_pins(
            {int(k): int(v) for k, v in dict(budgets).items()})

    rate = int(params.get("rate", 3))
    opt_kwargs = {name: params[name] for name in _OPTION_PARAMS
                  if params.get(name) is not None}
    opt_kwargs.setdefault("flow", "auto")
    options = SynthesisOptions(**opt_kwargs)

    resources = None
    if design.resources_for is not None:
        resources = resources_fingerprint(design.resources_for(rate))

    key = job_key(graph, partitioning, rate, options,
                  timing=design.timing, resources=resources)
    job = SweepJob(index=index, params=dict(params), graph=graph,
                   partitioning=partitioning, rate=rate,
                   options=options, timing=design.timing,
                   resources=resources, key=key)
    job.optimistic = optimistic_metrics(job)
    return job


def with_port_model(partitioning: Partitioning,
                    model: str) -> Partitioning:
    """Rebuild every chip spec under the given port model.

    ``bidirectional`` chips have no fixed input/output split, so fixed
    splits are dropped when switching models; totals are preserved.
    """
    if model not in ("unidirectional", "bidirectional"):
        raise SweepError(
            f"unknown port model {model!r}; expected "
            f"'unidirectional' or 'bidirectional'")
    bidirectional = model == "bidirectional"
    chips = {index: ChipSpec(partitioning.total_pins(index),
                             bidirectional=bidirectional)
             for index in partitioning.indices()}
    return Partitioning(chips)


def scale_pins(partitioning: Partitioning,
               scale: float) -> Partitioning:
    """Multiply every chip's total pin budget (port model preserved)."""
    if scale <= 0:
        raise SweepError(f"pin_scale must be positive, got {scale}")
    return partitioning.with_pins({
        index: max(1, int(round(partitioning.total_pins(index) * scale)))
        for index in partitioning.indices()})


def _auto_partition(design: DesignSpace, spec: Dict[str, Any]
                    ) -> Tuple[Cdfg, Partitioning]:
    """Apply the CHOP-role partitioner for an ``auto_partition`` point."""
    from repro.partition.auto import partition_cdfg

    if design.graph.io_nodes():
        raise SweepError(
            "auto_partition sweeps need a flat graph (no I/O nodes); "
            f"design {design.name!r} is already partitioned")
    n_chips = int(spec.pop("n_chips"))
    seed = int(spec.pop("seed", 0))
    real = design.partitioning.real_chips()
    default_pins = max(
        (design.partitioning.total_pins(i) for i in real), default=256)
    pins = int(spec.pop("pins", default_pins))
    world_pins = int(spec.pop("world_pins",
                              design.partitioning.total_pins(
                                  OUTSIDE_WORLD)))
    if spec:
        raise SweepError(
            f"unknown auto_partition keys {sorted(spec)}")
    plan = partition_cdfg(design.graph, n_chips, seed=seed)
    graph = plan.apply(design.graph)
    chips = {OUTSIDE_WORLD: ChipSpec(world_pins)}
    for chip in range(1, n_chips + 1):
        chips[chip] = ChipSpec(pins)
    return graph, Partitioning(chips)


def auto_partition_axis(graph: Cdfg, n_chips: int,
                        seeds: Sequence[int],
                        **kwargs: Any) -> List[Dict[str, Any]]:
    """``auto_partition`` axis values for the *distinct* partitionings.

    Different seeds often converge on identical assignments; this runs
    :func:`repro.partition.auto.partition_variants` to dedupe them, so
    the sweep only synthesizes each partitioning once.  Extra keyword
    arguments (``pins``, ``world_pins``) are copied into every axis
    value.
    """
    from repro.partition.auto import partition_variants

    if graph.io_nodes():
        raise SweepError(
            "auto_partition_axis needs a flat graph (no I/O nodes)")
    variants = partition_variants(graph, n_chips, seeds)
    return [dict({"n_chips": n_chips, "seed": seed}, **kwargs)
            for seed in variants]


# ---------------------------------------------------------------------
def optimistic_metrics(job: SweepJob) -> Dict[str, float]:
    """Cheap lower bounds on a job's metrics, for dominance pruning.

    A queued job whose *best possible* outcome is already dominated by
    a finished point cannot extend the Pareto front, so the executor
    may cancel it.  Bounds must be sound, never tight: chip count is
    exact; latency is the critical path; every chip (and the outside
    world) needs at least one port as wide as its widest crossing
    value; one bus suffices only if anything crosses at all.
    """
    timing = resolve_timing(job.timing)
    from repro.cdfg.analysis import critical_path_length

    widest: Dict[int, int] = {}
    for node in job.graph.io_nodes():
        for chip in (node.source_partition, node.dest_partition):
            if chip is None:
                continue
            widest[chip] = max(widest.get(chip, 0), node.bit_width)
    return {
        "chips": len(job.partitioning.real_chips()),
        "buses": 1 if widest else 0,
        "total_pins": sum(widest.values()),
        "latency": critical_path_length(job.graph, timing),
    }
