"""Machine-readable explore reports (schema: ``repro-explore-report/1``).

:func:`build_report` folds an :class:`repro.explore.executor.ExploreResult`
into one JSON-able document: the sweep spec, every point record, the
Pareto front, status/cache/throughput summaries, and the merged solver
perf counters.  The document validates against
``docs/schema/explore_report.schema.json`` (CI enforces this via
``tools/validate_synth_json.py``, which accepts any schema path).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.explore.executor import COMPLETED_STATUSES, ExploreResult
from repro.explore.pareto import OBJECTIVES, front_summary
from repro.explore.spec import SweepSpec
from repro.io_json import SCHEMA_VERSION

REPORT_SCHEMA = "repro-explore-report/1"

#: Keys every point record carries into the report.
_POINT_KEYS = ("index", "key", "params", "status", "cached", "wall_ms",
               "metrics", "stats", "diagnostics", "error", "progress")


def _clean_point(record: Dict[str, Any]) -> Dict[str, Any]:
    out = {key: record[key] for key in _POINT_KEYS if key in record}
    out.setdefault("cached", False)
    if "wall_ms" not in out and "metrics" in out:
        out["wall_ms"] = out["metrics"].get("wall_ms", 0.0)
    out.setdefault("wall_ms", 0.0)
    return out


def build_report(design: str, spec: SweepSpec,
                 result: ExploreResult) -> Dict[str, Any]:
    """The full sweep report document."""
    points = [_clean_point(p) for p in result.points]
    completed = [p for p in points
                 if p.get("status") in COMPLETED_STATUSES]
    counts = result.status_counts()
    resolved = len(completed)
    seconds = result.wall_ms / 1000.0
    return {
        "schema": REPORT_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "design": design,
        "workers": result.workers,
        "spec": spec.to_dict(),
        "objectives": list(OBJECTIVES),
        "points": points,
        "pareto": result.pareto_indices(),
        "pareto_summary": front_summary(
            [p["metrics"] for p in completed]),
        "status_counts": counts,
        "cache": result.cache_stats,
        "perf": result.perf.snapshot(),
        "wall_ms": round(result.wall_ms, 3),
        "points_per_sec": (round(resolved / seconds, 3)
                           if seconds > 0 else 0.0),
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def explore(design: str, spec: SweepSpec, design_space,
            workers: int = 1,
            cache_path: Optional[str] = None,
            deadline_ms: Optional[float] = None,
            prune_dominated: bool = True) -> Dict[str, Any]:
    """One-call convenience: expand, execute, report."""
    from repro.explore.cache import ResultCache
    from repro.explore.executor import Executor

    jobs = spec.expand(design_space)
    executor = Executor(workers=workers,
                        cache=ResultCache(cache_path),
                        deadline_ms=deadline_ms,
                        prune_dominated=prune_dominated)
    result = executor.run(jobs)
    return build_report(design, spec, result)
