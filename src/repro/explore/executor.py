"""Fan-out execution of sweep jobs over a process worker pool.

The :class:`Executor` turns a list of :class:`repro.explore.spec.SweepJob`
into one record per point, using four cooperating mechanisms:

* **result cache** — points whose content hash is already in the
  :class:`repro.explore.cache.ResultCache` are served without running;
* **worker pool** — remaining jobs fan out over a
  ``ProcessPoolExecutor`` (``workers=1`` runs inline, no pool tax);
* **deadline carving** — a global ``deadline_ms`` is divided into
  per-job :class:`repro.robustness.budget.SolveBudget` slices via
  :func:`repro.robustness.budget.carve_deadline_ms`, so the sweep as a
  whole lands near the deadline while each job degrades gracefully
  rather than being killed mid-solve;
* **dominance pruning** — after every completion the running Pareto
  front is compared against the *optimistic* (lower-bound) metrics of
  still-queued jobs; a queued job that provably cannot extend the
  front is cancelled cooperatively (recorded as ``pruned``).

Worker :mod:`repro.perf` counter deltas are merged back into both the
parent's global ``PERF`` registry and a per-sweep registry, so solver
effort is attributable exactly as in single-process runs.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import (CancelledError, ProcessPoolExecutor,
                                as_completed)
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.explore.cache import ResultCache
from repro.explore.pareto import (OBJECTIVES, PRUNE_OBJECTIVES,
                                  dominates, pareto_front)
from repro.explore.spec import SweepJob
from repro.explore.worker import run_job
from repro.perf import PERF, PerfRegistry
from repro.robustness.budget import carve_deadline_ms
from repro.robustness.deadline import Deadline

#: Point statuses that carry a full metric vector.
COMPLETED_STATUSES = ("ok", "degraded")


@dataclass
class ExploreResult:
    """Everything one sweep run produced, in job-index order."""

    points: List[Dict[str, Any]]
    workers: int
    wall_ms: float
    perf: PerfRegistry
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    objectives: Sequence[str] = OBJECTIVES

    # ------------------------------------------------------------------
    def completed(self) -> List[Dict[str, Any]]:
        return [p for p in self.points
                if p.get("status") in COMPLETED_STATUSES]

    def pareto_indices(self) -> List[int]:
        """``index`` values of the non-dominated completed points."""
        done = self.completed()
        front = pareto_front([p["metrics"] for p in done],
                             self.objectives)
        return [done[i]["index"] for i in front]

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for point in self.points:
            status = point.get("status", "unknown")
            counts[status] = counts.get(status, 0) + 1
        return counts

    @property
    def all_ok(self) -> bool:
        return all(p.get("status") == "ok" for p in self.points)


class Executor:
    """Runs sweep jobs: cache, fan out, carve deadlines, prune."""

    def __init__(self,
                 workers: int = 1,
                 cache: Optional[ResultCache] = None,
                 deadline_ms: Optional[float] = None,
                 prune_dominated: bool = True,
                 min_job_ms: float = 25.0) -> None:
        self.workers = max(1, int(workers))
        self.cache = cache if cache is not None else ResultCache(None)
        self.deadline_ms = deadline_ms
        self.prune_dominated = prune_dominated
        self.min_job_ms = min_job_ms

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[SweepJob]) -> ExploreResult:
        start = time.perf_counter()
        deadline = Deadline(self.deadline_ms)
        sweep_perf = PerfRegistry()
        records: Dict[int, Dict[str, Any]] = {}
        front: List[Dict[str, float]] = []

        pending: List[SweepJob] = []
        for job in jobs:
            cached = self.cache.get(job.key)
            if cached is not None:
                cached["index"] = job.index
                cached["params"] = dict(job.params)
                cached["cached"] = True
                records[job.index] = cached
                if cached.get("status") in COMPLETED_STATUSES:
                    front.append(cached["metrics"])
                sweep_perf.merge(cached.get("perf") or {})
            else:
                pending.append(job)

        if pending:
            if self.workers == 1:
                self._run_inline(pending, deadline, records, front,
                                 sweep_perf)
            else:
                self._run_pool(pending, deadline, records, front,
                               sweep_perf)

        wall_ms = (time.perf_counter() - start) * 1000.0
        points = [records[job.index] for job in jobs]
        return ExploreResult(points=points, workers=self.workers,
                             wall_ms=wall_ms, perf=sweep_perf,
                             cache_stats=self.cache.stats())

    # ------------------------------------------------------------------
    def _prunable(self, job: SweepJob,
                  front: List[Dict[str, float]]) -> bool:
        if not self.prune_dominated or not job.optimistic:
            return False
        return any(dominates(done, job.optimistic, PRUNE_OBJECTIVES)
                   for done in front)

    def _absorb(self, record: Dict[str, Any], job: SweepJob,
                records: Dict[int, Dict[str, Any]],
                front: List[Dict[str, float]],
                sweep_perf: PerfRegistry,
                merge_global: bool) -> None:
        records[job.index] = record
        sweep_perf.merge(record.get("perf") or {})
        if merge_global:
            # Pool workers incremented *their* PERF; fold the deltas
            # into the parent so the sweep looks like one process.
            PERF.merge(record.get("perf") or {})
        if record.get("status") in COMPLETED_STATUSES:
            front.append(record["metrics"])
            self.cache.put(job.key, record)

    @staticmethod
    def _skipped(job: SweepJob, status: str) -> Dict[str, Any]:
        return {"index": job.index, "key": job.key,
                "params": dict(job.params), "status": status,
                "cached": False, "wall_ms": 0.0}

    # ------------------------------------------------------------------
    def _run_inline(self, pending: List[SweepJob], deadline: Deadline,
                    records: Dict[int, Dict[str, Any]],
                    front: List[Dict[str, float]],
                    sweep_perf: PerfRegistry) -> None:
        for position, job in enumerate(pending):
            if deadline.expired():
                records[job.index] = self._skipped(
                    job, "deadline_skipped")
                continue
            if self._prunable(job, front):
                records[job.index] = self._skipped(job, "pruned")
                continue
            slice_ms = carve_deadline_ms(
                deadline.remaining_ms(), len(pending) - position,
                workers=1, floor_ms=self.min_job_ms)
            record = run_job(job.payload(deadline_ms=slice_ms))
            self._absorb(record, job, records, front, sweep_perf,
                         merge_global=False)

    def _run_pool(self, pending: List[SweepJob], deadline: Deadline,
                  records: Dict[int, Dict[str, Any]],
                  front: List[Dict[str, float]],
                  sweep_perf: PerfRegistry) -> None:
        slice_ms = carve_deadline_ms(
            deadline.remaining_ms(), len(pending),
            workers=self.workers, floor_ms=self.min_job_ms)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        skip_reason: Dict[int, str] = {}
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=context) as pool:
            futures = {
                pool.submit(run_job, job.payload(deadline_ms=slice_ms)):
                job
                for job in pending
            }
            for future in as_completed(futures):
                job = futures[future]
                try:
                    record = future.result()
                except CancelledError:
                    records[job.index] = self._skipped(
                        job, skip_reason.get(job.index, "pruned"))
                    continue
                except Exception as exc:  # pool infrastructure failure
                    records[job.index] = {
                        "index": job.index, "key": job.key,
                        "params": dict(job.params), "status": "error",
                        "cached": False, "wall_ms": 0.0,
                        "error": f"worker failed: {exc}"}
                    continue
                self._absorb(record, job, records, front, sweep_perf,
                             merge_global=True)
                # Cooperative cancellation of queued work that can no
                # longer matter: everything once the global deadline is
                # gone, dominated points always.
                expired = deadline.expired()
                for other, other_job in futures.items():
                    if other.done() or other_job.index in skip_reason:
                        continue
                    if expired:
                        reason = "deadline_skipped"
                    elif self._prunable(other_job, front):
                        reason = "pruned"
                    else:
                        continue
                    if other.cancel():
                        skip_reason[other_job.index] = reason
