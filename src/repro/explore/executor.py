"""Fan-out execution of sweep jobs over a process worker pool.

The :class:`Executor` turns a list of :class:`repro.explore.spec.SweepJob`
into one record per point, using four cooperating mechanisms:

* **result cache** — points whose content hash is already in the
  :class:`repro.explore.cache.ResultCache` are served without running;
* **worker pool** — remaining jobs fan out over a
  ``ProcessPoolExecutor`` (``workers=1`` runs inline, no pool tax);
* **deadline carving** — a global ``deadline_ms`` is divided into
  per-job :class:`repro.robustness.budget.SolveBudget` slices via
  :func:`repro.robustness.budget.carve_deadline_ms`, so the sweep as a
  whole lands near the deadline while each job degrades gracefully
  rather than being killed mid-solve;
* **dominance pruning** — after every completion the running Pareto
  front is compared against the *optimistic* (lower-bound) metrics of
  still-queued jobs; a queued job that provably cannot extend the
  front is cancelled cooperatively (recorded as ``pruned``).

Worker :mod:`repro.perf` counter deltas are merged back into both the
parent's global ``PERF`` registry and a per-sweep registry, so solver
effort is attributable exactly as in single-process runs.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import (CancelledError, ProcessPoolExecutor,
                                as_completed)
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.oracle_store import OracleStore, activate
from repro.explore.cache import ResultCache
from repro.explore.pareto import (OBJECTIVES, PRUNE_OBJECTIVES,
                                  dominates, pareto_front)
from repro.explore.spec import SweepJob
from repro.explore.worker import run_chain, run_job
from repro.obs import HUB, TRACER, inject_payload
from repro.perf import PERF, PerfRegistry
from repro.robustness.budget import carve_deadline_ms
from repro.robustness.deadline import Deadline

#: Sweep-point parameters that perturb only the pin budgets: jobs that
#: agree on every *other* parameter are warm-start neighbors.
NEIGHBOR_AXES = ("pin_scale", "pin_budgets")

#: Point statuses that carry a full metric vector.
COMPLETED_STATUSES = ("ok", "degraded")


@dataclass
class ExploreResult:
    """Everything one sweep run produced, in job-index order."""

    points: List[Dict[str, Any]]
    workers: int
    wall_ms: float
    perf: PerfRegistry
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    objectives: Sequence[str] = OBJECTIVES

    # ------------------------------------------------------------------
    def completed(self) -> List[Dict[str, Any]]:
        return [p for p in self.points
                if p.get("status") in COMPLETED_STATUSES]

    def pareto_indices(self) -> List[int]:
        """``index`` values of the non-dominated completed points."""
        done = self.completed()
        front = pareto_front([p["metrics"] for p in done],
                             self.objectives)
        return [done[i]["index"] for i in front]

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for point in self.points:
            status = point.get("status", "unknown")
            counts[status] = counts.get(status, 0) + 1
        return counts

    @property
    def all_ok(self) -> bool:
        return all(p.get("status") == "ok" for p in self.points)


class Executor:
    """Runs sweep jobs: cache, fan out, carve deadlines, prune."""

    def __init__(self,
                 workers: int = 1,
                 cache: Optional[ResultCache] = None,
                 deadline_ms: Optional[float] = None,
                 prune_dominated: bool = True,
                 min_job_ms: float = 25.0,
                 warm: bool = False,
                 oracle_store: Optional[OracleStore] = None) -> None:
        self.workers = max(1, int(workers))
        self.cache = cache if cache is not None else ResultCache(None)
        self.deadline_ms = deadline_ms
        self.prune_dominated = prune_dominated
        self.min_job_ms = min_job_ms
        #: Warm mode: group pin-budget neighbors into chains that run
        #: back-to-back on one worker, each point reusing its
        #: predecessor's tableau basis and the shared oracle store.
        self.warm = bool(warm)
        self.oracle_store = oracle_store

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[SweepJob]) -> ExploreResult:
        with TRACER.span("explore.sweep", layer="explore",
                         jobs=len(jobs), workers=self.workers) as sp:
            result = self._run(jobs, deadline=Deadline(self.deadline_ms))
            sp.set(cache_hits=result.cache_stats.get("hits", 0))
            return result

    def _run(self, jobs: Sequence[SweepJob],
             deadline: Deadline) -> ExploreResult:
        start = time.perf_counter()
        sweep_perf = PerfRegistry()
        records: Dict[int, Dict[str, Any]] = {}
        front: List[Dict[str, float]] = []

        pending: List[SweepJob] = []
        for job in jobs:
            cached = self.cache.get(job.key)
            if cached is not None:
                cached["index"] = job.index
                cached["params"] = dict(job.params)
                cached["cached"] = True
                records[job.index] = cached
                if cached.get("status") in COMPLETED_STATUSES:
                    front.append(cached["metrics"])
                sweep_perf.merge(cached.get("perf") or {})
            else:
                pending.append(job)

        # Activate the shared store *before* the pool forks, so worker
        # processes inherit it and can answer oracle queries locally.
        previous_store = (activate(self.oracle_store)
                          if self.oracle_store is not None else None)
        try:
            if pending:
                if self.warm:
                    chains = self._chains(pending)
                    if self.workers == 1:
                        self._run_chains_inline(chains, deadline,
                                                records, front,
                                                sweep_perf)
                    else:
                        self._run_chains_pool(chains, deadline,
                                              records, front,
                                              sweep_perf)
                elif self.workers == 1:
                    self._run_inline(pending, deadline, records, front,
                                     sweep_perf)
                else:
                    self._run_pool(pending, deadline, records, front,
                                   sweep_perf)
        finally:
            if self.oracle_store is not None:
                activate(previous_store)

        wall_ms = (time.perf_counter() - start) * 1000.0
        points = [records[job.index] for job in jobs]
        return ExploreResult(points=points, workers=self.workers,
                             wall_ms=wall_ms, perf=sweep_perf,
                             cache_stats=self.cache.stats())

    # ------------------------------------------------------------------
    def _chains(self, pending: List[SweepJob]) -> List[List[SweepJob]]:
        """Group pending jobs into warm-start chains.

        Chain key = every sweep parameter except the pin-budget axes
        (a rate or flow change alters the ILP's *structure*, so those
        points cannot share a basis).  Within a chain, points run in
        *descending* ``pin_scale`` order: every successor is then a
        tightening of its predecessor (component-wise smaller RHS), so
        the inherited cut set stays valid outright and warm verdicts —
        including "infeasible" — are sound without confirmation solves.
        Infeasible verdicts proved at the larger budget also answer
        smaller-budget oracle queries by dominance.
        """
        groups: Dict[tuple, List[SweepJob]] = {}
        for job in pending:
            key = tuple(sorted((k, repr(v))
                               for k, v in job.params.items()
                               if k not in NEIGHBOR_AXES))
            groups.setdefault(key, []).append(job)

        def scale_of(job: SweepJob):
            value = job.params.get("pin_scale")
            return (0, -float(value)) if isinstance(value, (int, float)) \
                else (1, float(job.index))

        return [sorted(chain, key=scale_of)
                for chain in groups.values()]

    # ------------------------------------------------------------------
    def _prunable(self, job: SweepJob,
                  front: List[Dict[str, float]]) -> bool:
        if not self.prune_dominated or not job.optimistic:
            return False
        return any(dominates(done, job.optimistic, PRUNE_OBJECTIVES)
                   for done in front)

    def _absorb(self, record: Dict[str, Any], job: SweepJob,
                records: Dict[int, Dict[str, Any]],
                front: List[Dict[str, float]],
                sweep_perf: PerfRegistry,
                merge_global: bool) -> None:
        records[job.index] = record
        record.pop("warm_basis", None)
        sweep_perf.merge(record.get("perf") or {})
        spans = record.pop("spans", None)
        hub_delta = record.pop("hub", None)
        if merge_global:
            # Pool workers incremented *their* PERF; fold the deltas
            # into the parent so the sweep looks like one process.
            PERF.merge(record.get("perf") or {})
            if self.oracle_store is not None:
                # Likewise the oracle entries a forked worker proved.
                self.oracle_store.merge(record.get("oracle_delta"))
            # Same for the worker's spans and histogram observations;
            # inline runs recorded directly into the parent's TRACER /
            # HUB, so merging there would double-count.
            TRACER.merge(spans)
            HUB.merge(hub_delta)
        if record.get("status") in COMPLETED_STATUSES:
            front.append(record["metrics"])
            self.cache.put(job.key, record)

    @staticmethod
    def _skipped(job: SweepJob, status: str) -> Dict[str, Any]:
        return {"index": job.index, "key": job.key,
                "params": dict(job.params), "status": status,
                "cached": False, "wall_ms": 0.0}

    # ------------------------------------------------------------------
    def _run_inline(self, pending: List[SweepJob], deadline: Deadline,
                    records: Dict[int, Dict[str, Any]],
                    front: List[Dict[str, float]],
                    sweep_perf: PerfRegistry) -> None:
        for position, job in enumerate(pending):
            if deadline.expired():
                records[job.index] = self._skipped(
                    job, "deadline_skipped")
                continue
            if self._prunable(job, front):
                records[job.index] = self._skipped(job, "pruned")
                continue
            slice_ms = carve_deadline_ms(
                deadline.remaining_ms(), len(pending) - position,
                workers=1, floor_ms=self.min_job_ms)
            record = run_job(inject_payload(
                job.payload(deadline_ms=slice_ms)))
            self._absorb(record, job, records, front, sweep_perf,
                         merge_global=False)

    def _run_pool(self, pending: List[SweepJob], deadline: Deadline,
                  records: Dict[int, Dict[str, Any]],
                  front: List[Dict[str, float]],
                  sweep_perf: PerfRegistry) -> None:
        slice_ms = carve_deadline_ms(
            deadline.remaining_ms(), len(pending),
            workers=self.workers, floor_ms=self.min_job_ms)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        skip_reason: Dict[int, str] = {}
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=context) as pool:
            futures = {
                pool.submit(run_job, inject_payload(
                    job.payload(deadline_ms=slice_ms))):
                job
                for job in pending
            }
            for future in as_completed(futures):
                job = futures[future]
                try:
                    record = future.result()
                except CancelledError:
                    records[job.index] = self._skipped(
                        job, skip_reason.get(job.index, "pruned"))
                    continue
                except Exception as exc:  # pool infrastructure failure
                    records[job.index] = {
                        "index": job.index, "key": job.key,
                        "params": dict(job.params), "status": "error",
                        "cached": False, "wall_ms": 0.0,
                        "error": f"worker failed: {exc}"}
                    continue
                self._absorb(record, job, records, front, sweep_perf,
                             merge_global=True)
                # Cooperative cancellation of queued work that can no
                # longer matter: everything once the global deadline is
                # gone, dominated points always.
                expired = deadline.expired()
                for other, other_job in futures.items():
                    if other.done() or other_job.index in skip_reason:
                        continue
                    if expired:
                        reason = "deadline_skipped"
                    elif self._prunable(other_job, front):
                        reason = "pruned"
                    else:
                        continue
                    if other.cancel():
                        skip_reason[other_job.index] = reason

    # ------------------------------------------------------------------
    def _run_chains_inline(self, chains: List[List[SweepJob]],
                           deadline: Deadline,
                           records: Dict[int, Dict[str, Any]],
                           front: List[Dict[str, float]],
                           sweep_perf: PerfRegistry) -> None:
        remaining = sum(len(chain) for chain in chains)
        for chain in chains:
            warm = None
            for job in chain:
                if deadline.expired():
                    records[job.index] = self._skipped(
                        job, "deadline_skipped")
                    remaining -= 1
                    continue
                if self._prunable(job, front):
                    records[job.index] = self._skipped(job, "pruned")
                    remaining -= 1
                    continue
                slice_ms = carve_deadline_ms(
                    deadline.remaining_ms(), remaining,
                    workers=1, floor_ms=self.min_job_ms)
                payload = inject_payload(
                    job.payload(deadline_ms=slice_ms))
                payload["export_warm"] = True
                if warm is not None:
                    payload["warm_basis"] = warm
                record = run_job(payload)
                basis = record.pop("warm_basis", None)
                if basis is not None:
                    warm = basis
                self._absorb(record, job, records, front, sweep_perf,
                             merge_global=False)
                remaining -= 1

    def _run_chains_pool(self, chains: List[List[SweepJob]],
                         deadline: Deadline,
                         records: Dict[int, Dict[str, Any]],
                         front: List[Dict[str, float]],
                         sweep_perf: PerfRegistry) -> None:
        total = sum(len(chain) for chain in chains)
        slice_ms = carve_deadline_ms(
            deadline.remaining_ms(), total,
            workers=self.workers, floor_ms=self.min_job_ms)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=context) as pool:
            futures = {}
            for chain in chains:
                payloads = [inject_payload(
                    job.payload(deadline_ms=slice_ms))
                    for job in chain]
                futures[pool.submit(run_chain, payloads)] = chain
            for future in as_completed(futures):
                chain = futures[future]
                try:
                    chain_records = future.result()
                except CancelledError:
                    for job in chain:
                        records[job.index] = self._skipped(
                            job, "deadline_skipped")
                    continue
                except Exception as exc:  # pool infrastructure failure
                    for job in chain:
                        records[job.index] = {
                            "index": job.index, "key": job.key,
                            "params": dict(job.params),
                            "status": "error", "cached": False,
                            "wall_ms": 0.0,
                            "error": f"worker failed: {exc}"}
                    continue
                for job, record in zip(chain, chain_records):
                    self._absorb(record, job, records, front,
                                 sweep_perf, merge_global=True)
                # Chains are the cancellation granularity in warm mode:
                # once the deadline is gone, unstarted chains are cut.
                if deadline.expired():
                    for other, other_chain in futures.items():
                        other.cancel()
