"""The explorer's process-pool worker: one sweep point per call.

:func:`run_job` is the single importable entry point a
``ProcessPoolExecutor`` dispatches to.  Its contract is deliberately
plain-data-in, plain-data-out: the payload is a JSON-able dict (graph
and partitioning in their :mod:`repro.io_json` forms, options as a
field dict, a carved per-job deadline in ms), and the returned record
is a JSON-able dict too — status, metrics, stats, diagnostics, and the
worker's :mod:`repro.perf` counter delta, ready to be merged by the
parent and appended verbatim to the on-disk result cache.

Workers never raise: every failure mode is folded into the record's
``status`` (``error`` / ``budget_exhausted``) so one pathological point
cannot take down the sweep.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.flow import SynthesisOptions, synthesize
from repro.core.oracle_store import get_active
from repro.errors import ReproError
from repro.io_json import (_stats_to_dict, graph_from_dict,
                           partitioning_from_dict)
from repro.modules.library import (ar_filter_timing,
                                   elliptic_filter_timing)
from repro.obs import HUB, TRACER, extract_payload
from repro.perf import PERF
from repro.robustness.budget import BudgetExhausted, SolveBudget

#: Named timing libraries (module libraries are code, not data, so jobs
#: reference them by name — the same convention as result archives).
TIMINGS: Dict[str, Callable[[], Any]] = {
    "ar": ar_filter_timing,
    "elliptic": elliptic_filter_timing,
}


def resolve_timing(name: str):
    try:
        return TIMINGS[name]()
    except KeyError:
        raise ReproError(
            f"unknown timing library {name!r}; "
            f"expected one of {sorted(TIMINGS)}") from None


def _resources_from_payload(data: Optional[Mapping[str, int]]):
    if data is None:
        return None
    out: Dict[tuple, int] = {}
    for key, count in data.items():
        chip, _, op_type = key.partition(":")
        out[(int(chip), op_type)] = int(count)
    return out


def result_metrics(result, wall_ms: float) -> Dict[str, float]:
    """The explorer's five minimization objectives for one result."""
    interconnect = result.interconnect
    if interconnect is None and result.simple_allocation is not None:
        interconnect = result.simple_allocation.interconnect
    return {
        "chips": len(result.partitioning.real_chips()),
        "buses": 0 if interconnect is None else len(interconnect.buses),
        "total_pins": sum(result.pins_used().values()),
        "latency": result.pipe_length,
        "wall_ms": round(wall_ms, 3),
    }


def run_job(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Synthesize one sweep point; always returns a record dict.

    Warm-start extensions to the payload contract (all optional):

    * ``warm_basis`` — a :class:`repro.ilp.WarmBasis` (or its dict
      form) from a structurally-identical neighbor; handed to
      :func:`synthesize` as ``pin_warm_basis``;
    * ``export_warm`` — when truthy, the result's exported basis rides
      along as ``record["warm_basis"]`` (an in-process object — callers
      that archive records must drop it; :meth:`ResultCache.put` does).

    When a process-wide oracle store is active (see
    :mod:`repro.core.oracle_store`), the entries this job appended are
    returned as ``record["oracle_delta"]`` for the parent to merge —
    forked pool workers mutate only their copy of the store.
    """
    record: Dict[str, Any] = {
        "index": payload.get("index", -1),
        "key": payload.get("key", ""),
        "params": dict(payload.get("params", {})),
        "cached": False,
    }
    start = time.perf_counter()
    before = PERF.snapshot()
    hub_before = HUB.snapshot()
    store = get_active()
    mark = store.mark() if store is not None else 0
    # Re-activate the submitter's trace context (rides in the payload
    # across the fork/thread boundary) so this job's spans parent
    # under it; the delta ships back in the record for the merge.
    span_mark = TRACER.mark()
    with TRACER.attach(extract_payload(payload)), \
            TRACER.span("job.solve", layer="worker",
                        index=record["index"]) as job_span:
        try:
            graph = graph_from_dict(payload["design"]["graph"])
            partitioning = partitioning_from_dict(
                payload["design"]["partitioning"])
            timing = resolve_timing(payload.get("timing", "ar"))
            options = SynthesisOptions.from_dict(payload["options"])
            resources = _resources_from_payload(payload.get("resources"))
            deadline_ms = payload.get("deadline_ms")
            budget = (None if deadline_ms is None
                      else SolveBudget(deadline_ms=deadline_ms))
            kwargs = options.to_dict()
            flow = kwargs.pop("flow")
            result = synthesize(graph, partitioning, timing,
                                int(payload["rate"]), flow=flow,
                                budget=budget, resources=resources,
                                pin_warm_basis=payload.get("warm_basis"),
                                **kwargs)
            wall_ms = (time.perf_counter() - start) * 1000.0
            record["status"] = "degraded" if result.degraded else "ok"
            record["metrics"] = result_metrics(result, wall_ms)
            record["stats"] = _jsonable(_stats_to_dict(result.stats))
            record["diagnostics"] = result.diagnostics.to_dict()
            if payload.get("export_warm") \
                    and result.warm_basis is not None:
                record["warm_basis"] = result.warm_basis
            if payload.get("check"):
                _check_record(result, record)
        except BudgetExhausted as exc:
            record["status"] = "budget_exhausted"
            record["error"] = str(exc)
            record["progress"] = exc.progress()
        except ReproError as exc:
            record["status"] = "error"
            record["error"] = str(exc)
        except Exception as exc:  # pragma: no cover - defensive
            record["status"] = "error"
            record["error"] = (f"{type(exc).__name__}: {exc}\n"
                               + traceback.format_exc(limit=5))
        job_span.set(status=record.get("status", "error"),
                     key=record["key"][:12])
    record.setdefault(
        "wall_ms", round((time.perf_counter() - start) * 1000.0, 3))
    HUB.observe("worker.solve_ms", record["wall_ms"])
    record["perf"] = PERF.delta_since(before)
    hub_delta = HUB.delta_since(hub_before)
    if hub_delta:
        record["hub"] = hub_delta
    spans = TRACER.spans_since(span_mark)
    if spans:
        record["spans"] = spans
    if store is not None:
        record["oracle_delta"] = store.delta_since(mark)
    return record


def run_chain(payloads: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Run neighboring sweep points back-to-back in this process.

    The executor groups points that differ only in their pin budgets
    into a chain (ordered by *descending* ``pin_scale``, so every step
    is a tightening and the inherited cuts stay sound) and dispatches
    the whole chain to one worker, so each point inherits its
    predecessor's :class:`WarmBasis` without any serialization and the
    (inherited) oracle store stays hot.  The exported basis is threaded
    internally and stripped from the returned records.
    """
    records: List[Dict[str, Any]] = []
    warm = None
    for payload in payloads:
        job = dict(payload)
        job["export_warm"] = True
        if warm is not None and "warm_basis" not in job:
            job["warm_basis"] = warm
        record = run_job(job)
        basis = record.pop("warm_basis", None)
        if basis is not None:
            warm = basis
        records.append(record)
    return records


def _check_record(result, record: Dict[str, Any]) -> None:
    """Run the unified design-rule checker on a finished solve.

    Enforceable violations (pin overruns a schedule-first result has
    *declared* are tolerated, everything else counts) flip the record
    to the non-cacheable ``invalid`` status, so a bad result is never
    served from the cache.  The full report rides along either way.
    """
    from repro.check.rules import check_result, enforceable_violations

    report = check_result(result)
    record["check"] = report.to_dict()
    hard = enforceable_violations(result, report)
    if hard:
        record["status"] = "invalid"
        record["error"] = ("design-rule check failed: "
                           + "; ".join(f"[{v.rule}] {v.message}"
                                       for v in hard[:5]))


def _jsonable(data: Dict[str, Any]) -> Dict[str, Any]:
    """Drop stats values that are not plain JSON data (e.g. verbatim
    solver objects some flows stash for debugging)."""
    out: Dict[str, Any] = {}
    for key, value in data.items():
        if isinstance(value, (str, int, float, bool, type(None))):
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [v for v in value
                        if isinstance(v, (str, int, float, bool))]
        elif isinstance(value, dict):
            out[key] = {str(k): v for k, v in value.items()
                        if isinstance(v, (str, int, float, bool,
                                          dict, list))}
    return out
