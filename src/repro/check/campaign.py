"""Service-path fuzz campaigns with fault injection.

Where :func:`repro.check.fuzz` pressure-tests the *solver* (three
flows against one design), a campaign pressure-tests the *service
path*: every case drives a small storm of concurrent client requests
through a live in-process fleet — one thread-pool service
(``mode="serve"``) or a 2-shard cluster behind a front tier
(``mode="cluster"``) — while a deterministic fault schedule perturbs
it (see :mod:`repro.check.faults`).  After each storm an invariant
checker validates the fleet-level properties no single-request test
can see:

* **exactly-once** — per content key, the number of real executions
  never exceeds one plus the shard deaths that could legitimately
  orphan an in-flight solve;
* **no-lost-request** — every launched request reaches exactly one
  terminal outcome (a finished job, or a documented shed when the
  schedule was disruptive); connection errors and hangs are failures;
* **valid-results** — every ``ok``/``degraded`` answer carries a
  passing :func:`repro.check.check_result` report;
* **trace-propagation** — a traced probe's id survives the full hop
  chain (client -> front -> shard -> worker) and comes back on the
  response;
* **drain-clean** — after the faults are healed the fleet converges
  back to ready (recovered shards reinstated, cache reachable).

Failing cases are greedily shrunk — fewer requests, fewer fault
events, a smaller design (reusing the fuzz shrinker for random
designs) — while the violation signature is preserved, then appended
to a replayable JSONL corpus that runs first on every campaign.

Design corpus: random partitioned designs (the fuzz generator) plus
the named HLS kernels — ``elliptic`` (EWF), ``fir``, ``dct`` — whose
repeats across cases exercise the cache/coalescing paths on content
keys readers recognize.
"""

from __future__ import annotations

import http.client
import json
import random
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.check.faults import (FaultEvent, FaultInjector,
                                generate_events)
from repro.check.fuzz import FuzzCase, _shrink_candidates
from repro.errors import ReproError

#: Named kernels the campaign mixes in with random designs.  ``fir``
#: needs rate >= 2 (its delay chain cannot close at rate 1); the
#: campaign draws its rates accordingly.
NAMED_DESIGNS = ("elliptic", "fir", "dct")

_REQUESTS = (3, 4, 5, 6)

#: Feasible initiation rates per design.  Infeasible rates would turn
#: every request into an uncacheable ``error`` record and starve the
#: cache/coalescing paths the campaign exists to stress (elliptic's
#: recursion cannot close below rate 6; fir's below rate 2).
_DESIGN_RATES = {
    "random": (2, 3, 4),
    "elliptic": (6, 7, 8),
    "fir": (2, 3, 4),
    "dct": (1, 2, 3),
}


# ---------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignCase:
    """One reproducible campaign input (pure data)."""

    seed: int
    design: str = "random"          #: "random" or a NAMED_DESIGNS name
    requests: int = 4               #: storm size
    rate: int = 2
    fuzz: Optional[FuzzCase] = None  #: the design, when random
    faults: Tuple[FaultEvent, ...] = ()

    def design_body(self) -> Any:
        """The request body's ``design`` value."""
        if self.design != "random":
            return self.design
        assert self.fuzz is not None
        from repro.io_json import graph_to_dict, partitioning_to_dict
        graph, partitioning = self.fuzz.build()
        return {"name": f"campaign-{self.seed}",
                "graph": graph_to_dict(graph),
                "partitioning": partitioning_to_dict(partitioning)}

    def request_params(self, index: int) -> Dict[str, Any]:
        """Sweep params for request ``index`` of the storm.

        The first half of the storm repeats the same rate — exercising
        in-flight coalescing and the batch window — while the rest
        fans out over neighboring rates.
        """
        rates = _DESIGN_RATES.get(self.design, _DESIGN_RATES["random"])
        if index < (self.requests + 1) // 2:
            return {"rate": self.rate}
        return {"rate": rates[(self.rate + index) % len(rates)]}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed, "design": self.design,
            "requests": self.requests, "rate": self.rate,
            "fuzz": None if self.fuzz is None else self.fuzz.to_dict(),
            "faults": [e.to_dict() for e in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignCase":
        fuzz = data.get("fuzz")
        return cls(
            seed=int(data.get("seed", 0)),
            design=str(data.get("design", "random")),
            requests=int(data.get("requests", 4)),
            rate=int(data.get("rate", 2)),
            fuzz=None if fuzz is None else FuzzCase.from_dict(fuzz),
            faults=tuple(FaultEvent.from_dict(e)
                         for e in data.get("faults", ())),
        )


def generate_campaign_cases(seed: str, count: int, mode: str,
                            faults: bool = True):
    """Deterministic, prefix-stable case stream (string-seeded)."""
    for index in range(count):
        rng = random.Random(f"repro-campaign:{seed}:{index}")
        requests = rng.choice(_REQUESTS)
        if rng.random() < 0.5:
            design = "random"
            rate = rng.choice(_DESIGN_RATES["random"])
            fuzz = FuzzCase(
                seed=rng.randrange(1_000_000),
                n_chips=rng.choice((2, 3)),
                n_ops=rng.choice(tuple(range(6, 11))),
                widths=rng.choice(((8,), (8, 16))),
                pin_budget=rng.choice((48, 64, 96, 256)),
                rate=rate)
        else:
            design, fuzz = rng.choice(NAMED_DESIGNS), None
            rate = rng.choice(_DESIGN_RATES[design])
        events = generate_events(rng, requests, mode) if faults else ()
        yield CampaignCase(seed=index, design=design,
                           requests=requests, rate=rate, fuzz=fuzz,
                           faults=events)


# ---------------------------------------------------------------------
class RecordingRunner:
    """Wraps the real worker entry point; counts executions per key
    and remembers each payload's propagated trace id."""

    def __init__(self) -> None:
        from repro.explore.worker import run_job
        self._run = run_job
        self._lock = threading.Lock()
        self.executions: Dict[str, int] = {}
        self.traces: Dict[str, str] = {}

    def __call__(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        key = str(payload.get("key", ""))
        ctx = payload.get("trace")
        with self._lock:
            self.executions[key] = self.executions.get(key, 0) + 1
            if isinstance(ctx, dict) and ctx.get("trace_id"):
                self.traces[key] = str(ctx["trace_id"])
        return self._run(payload)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.executions)

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        with self._lock:
            return {key: count - before.get(key, 0)
                    for key, count in self.executions.items()
                    if count > before.get(key, 0)}


class CampaignHarness:
    """A live in-process fleet the fault injector can reach into.

    ``mode="serve"``: cache server + one thread-pool service.
    ``mode="cluster"``: cache server + two shards + front tier.
    Context manager; restartable components come back on their
    original ports (rolling-restart style), so the client's target
    address is stable for the whole campaign.
    """

    def __init__(self, mode: str = "serve",
                 timeout_ms: float = 4000.0) -> None:
        if mode not in ("serve", "cluster"):
            raise ReproError(
                f"campaign mode must be serve|cluster, got {mode!r}")
        self.mode = mode
        self.timeout_ms = timeout_ms
        self.n_shards = 2 if mode == "cluster" else 1
        self.host = "127.0.0.1"
        self.runner = RecordingRunner()
        self.cache_dir: Optional[tempfile.TemporaryDirectory] = None
        self.cache_file: Optional[str] = None
        self.cache = None
        self.cache_port: Optional[int] = None
        self.shards: List[Any] = []
        self.front = None
        self._storm_seq = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "CampaignHarness":
        from repro.cluster import (ClusterConfig, ShardAddress,
                                   ThreadedCacheServer,
                                   ThreadedFrontTier)
        from repro.explore.cache import ResultCache

        self.cache_dir = tempfile.TemporaryDirectory(
            prefix="repro-campaign-")
        self.cache_file = f"{self.cache_dir.name}/cache.jsonl"
        self.cache = ThreadedCacheServer(
            ResultCache(self.cache_file, sync=False)).start()
        self.cache_port = self.cache.port
        for index in range(self.n_shards):
            self.shards.append(self._shard(index, port=0))
        if self.mode == "cluster":
            config = ClusterConfig(
                shards=tuple(
                    ShardAddress(f"shard-{i}", self.host, s.port)
                    for i, s in enumerate(self.shards)),
                port=0, cache_address=self.cache.address,
                batch_window_ms=10.0, probe_interval_s=0.2)
            self.front = ThreadedFrontTier(config).start()
        return self

    def __exit__(self, *exc_info) -> None:
        if self.front is not None:
            self.front.stop()
            self.front = None
        for shard in self.shards:
            if shard is not None:
                shard.stop()
        self.shards = []
        if self.cache is not None:
            self.cache.stop()
            self.cache = None
        if self.cache_dir is not None:
            self.cache_dir.cleanup()
            self.cache_dir = None

    def _shard(self, index: int, port: int):
        from repro.service import ServiceConfig, ShardIdentity
        from repro.service import ThreadedServer
        return ThreadedServer(ServiceConfig(
            port=port, workers=2, max_queue=8, pool_mode="thread",
            cache_sync=False,
            cache_path=f"remote://{self.host}:{self.cache_port}",
            job_runner=self.runner,
            default_timeout_ms=self.timeout_ms,
            shard=ShardIdentity(f"shard-{index}", index,
                                self.n_shards))).start()

    # -- what the injector calls ---------------------------------------
    @property
    def port(self) -> int:
        if self.front is not None:
            return self.front.port
        return self.shards[0].port

    def kill_shard(self, index: int) -> bool:
        if self.mode != "cluster":
            return False
        index %= self.n_shards
        shard = self.shards[index]
        if shard is None:
            return False
        self._ports = getattr(self, "_ports", {})
        self._ports[index] = shard.port
        shard.stop()
        self.shards[index] = None
        return True

    def restart_shard(self, index: int) -> bool:
        if self.mode != "cluster":
            return False
        index %= self.n_shards
        if self.shards[index] is not None:
            return False
        self.shards[index] = self._shard(
            index, port=self._ports[index])
        return True

    def kill_cache(self) -> bool:
        if self.cache is None:
            return False
        self.cache.stop()
        self.cache = None
        return True

    def revive_cache(self) -> bool:
        from repro.cluster import ThreadedCacheServer
        from repro.explore.cache import ResultCache
        if self.cache is not None:
            return False
        self.cache = ThreadedCacheServer(
            ResultCache(self.cache_file, sync=False),
            port=self.cache_port).start()
        return True

    def storm(self, count: int) -> None:
        """Rapid no-wait filler submissions to provoke 429 sheds.

        Fillers use a reserved corner of the parameter space
        (``pin_scale`` steps on ``ar-simple``) so their content keys
        never collide with campaign request keys.
        """
        client = self.client(retries=0)
        for _ in range(count):
            self._storm_seq += 1
            scale = 2.0 + 0.001 * self._storm_seq
            try:
                client.synthesize("ar-simple", wait=False,
                                  rate=1 + self._storm_seq % 4,
                                  pin_scale=round(scale, 3),
                                  timeout_ms=self.timeout_ms)
            except (OSError, ReproError):
                pass  # a shed filler did its job

    # ------------------------------------------------------------------
    def client(self, retries: int = 4, **kwargs):
        from repro.service import ServiceClient
        kwargs.setdefault("timeout_s", 60.0)
        kwargs.setdefault("backoff_base_s", 0.05)
        kwargs.setdefault("backoff_cap_s", 0.5)
        return ServiceClient(host=self.host, port=self.port,
                             retries=retries, **kwargs)

    def await_ready(self, timeout_s: float = 15.0) -> List[str]:
        """Wait for the healed fleet to converge; returns violations."""
        deadline = time.monotonic() + timeout_s
        if self.front is not None:
            front = self.front.front
            while time.monotonic() < deadline:
                if all(state.up for state in front.shards.values()):
                    return []
                time.sleep(0.05)
            down = sorted(name for name, s in front.shards.items()
                          if not s.up)
            return [f"drain-clean: shards never reinstated: {down}"]
        try:
            self.client(retries=0).wait_until_ready(
                timeout_s=max(1.0, deadline - time.monotonic()))
        except (OSError, ReproError) as exc:
            return [f"drain-clean: service never became ready: {exc}"]
        return []


# ---------------------------------------------------------------------
@dataclass
class CampaignCaseResult:
    """Outcome of one campaign case."""

    case: CampaignCase
    violations: List[str] = field(default_factory=list)
    outcomes: Dict[str, int] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    def signature(self) -> List[str]:
        return sorted({v.split(":", 1)[0] for v in self.violations})

    def to_dict(self) -> Dict[str, Any]:
        return {"case": self.case.to_dict(),
                "violations": list(self.violations),
                "outcomes": dict(self.outcomes)}


def _terminal(payload: Dict[str, Any]) -> bool:
    return payload.get("status") not in ("queued", "running")


def run_campaign_case(case: CampaignCase, harness: CampaignHarness,
                      timeout_ms: float = 4000.0
                      ) -> CampaignCaseResult:
    """Drive one storm through the live fleet and check invariants."""
    from repro.service import ServiceUnavailable

    result = CampaignCaseResult(case)
    injector = FaultInjector(case.faults, harness)
    before = harness.runner.snapshot()
    try:
        body = case.design_body()
    except ReproError as exc:
        result.violations.append(f"case-setup: {exc}")
        return result

    answers: List[Optional[Dict[str, Any]]] = [None] * case.requests
    errors: List[Optional[BaseException]] = [None] * case.requests

    def launch(index: int) -> None:
        client = harness.client(retries=4)
        try:
            answers[index] = client.synthesize(
                body, wait=True, timeout_ms=timeout_ms,
                **case.request_params(index))
        except BaseException as exc:  # classified by the invariants
            errors[index] = exc

    threads: List[threading.Thread] = []
    for index in range(case.requests):
        delay_s = injector.before_request(index)
        if delay_s:
            time.sleep(min(delay_s, 0.25))
        thread = threading.Thread(target=launch, args=(index,),
                                  daemon=True,
                                  name=f"campaign-req-{index}")
        thread.start()
        threads.append(thread)
    join_deadline = time.monotonic() + 60.0 + timeout_ms / 1000.0
    for thread in threads:
        thread.join(timeout=max(0.0,
                                join_deadline - time.monotonic()))
    hung = [t.name for t in threads if t.is_alive()]

    # Heal the fleet before judging it: recovered shards must rejoin,
    # the cache server must answer again.
    injector.finish()
    result.violations.extend(harness.await_ready())

    # -- no-lost-request ----------------------------------------------
    if hung:
        result.violations.append(
            f"no-lost-request: requests never returned: {hung}")
    for index, exc in enumerate(errors):
        if exc is None:
            continue
        if isinstance(exc, ServiceUnavailable) and injector.disruptive:
            result.outcomes["shed"] = result.outcomes.get("shed", 0) + 1
            continue  # a documented refusal under a disruptive plan
        result.violations.append(
            f"no-lost-request: request {index} died with "
            f"{type(exc).__name__}: {exc}")
    for index, payload in enumerate(answers):
        if payload is None:
            continue
        status = str(payload.get("status", ""))
        result.outcomes[status] = result.outcomes.get(status, 0) + 1
        if not _terminal(payload):
            result.violations.append(
                f"no-lost-request: request {index} answered "
                f"non-terminal status {status!r} on a wait=True call")

    # -- valid-results -------------------------------------------------
    for index, payload in enumerate(answers):
        if payload is None:
            continue
        if payload.get("status") in ("ok", "degraded"):
            check = payload.get("check")
            if not isinstance(check, dict) or not check.get("ok", False):
                result.violations.append(
                    f"valid-results: request {index} served a "
                    f"{payload.get('status')} result with a failing "
                    f"or missing check report")

    # -- exactly-once --------------------------------------------------
    # Keys answered for this case's storm; fillers and probes are out.
    # Bound: one real execution per key, plus one per shard kill (a
    # dying owner legitimately orphans an in-flight solve), plus one
    # per non-cacheable outcome (``error``/``budget_exhausted``
    # records are deliberately retried, never replayed — see
    # CACHEABLE_STATUSES).
    case_keys: Dict[str, int] = {}
    for payload in answers:
        if payload is None or not payload.get("key"):
            continue
        key = str(payload["key"])
        case_keys.setdefault(key, 0)
        if payload.get("status") not in ("ok", "degraded"):
            case_keys[key] += 1
    executed = harness.runner.delta(before)
    for key, retriable in case_keys.items():
        count = executed.get(key, 0)
        allowed = 1 + injector.shard_kills + retriable
        if count > allowed:
            result.violations.append(
                f"exactly-once: key {key[:12]} executed {count}x "
                f"(allowed {allowed} with {injector.shard_kills} "
                f"shard kills, {retriable} retriable outcomes)")

    # -- trace-propagation --------------------------------------------
    result.violations.extend(_trace_probe(harness, case))
    return result


def _trace_probe(harness: CampaignHarness,
                 case: CampaignCase) -> List[str]:
    """One traced request; its id must come back on the response and
    reach the worker that executed it."""
    from repro.obs import TRACER

    if not TRACER.enabled:
        return []
    trace_id = uuid.uuid4().hex[:16]
    headers = {"Content-Type": "application/json",
               "x-repro-trace-id": trace_id,
               "x-repro-parent-id": uuid.uuid4().hex[:16],
               "x-repro-sampled": "1"}
    # A fresh content key per probe, so the solve actually runs and
    # the propagated context is observable at the worker.
    body = {"design": "ar-simple", "wait": True, "rate": 3,
            "pin_scale": round(3.0 + 0.001 * (case.seed % 997), 3),
            "timeout_ms": harness.timeout_ms}
    conn = http.client.HTTPConnection(harness.host, harness.port,
                                      timeout=30.0)
    try:
        conn.request("POST", "/v1/synthesize", body=json.dumps(body),
                     headers=headers)
        response = conn.getresponse()
        payload = json.loads(response.read() or b"{}")
        echoed = response.getheader("X-Repro-Trace-Id")
    except (OSError, ValueError) as exc:
        return [f"trace-propagation: probe failed: {exc}"]
    finally:
        conn.close()
    problems = []
    if echoed != trace_id:
        problems.append(
            f"trace-propagation: response carried trace id {echoed!r},"
            f" expected {trace_id!r}")
    key = str(payload.get("key", ""))
    if key and not payload.get("cached") \
            and not payload.get("coalesced"):
        seen = harness.runner.traces.get(key)
        if seen != trace_id:
            problems.append(
                f"trace-propagation: worker saw trace id {seen!r} for "
                f"probe key {key[:12]}, expected {trace_id!r}")
    return problems


# ---------------------------------------------------------------------
def shrink_campaign(case: CampaignCase, signature: List[str],
                    mode: str, timeout_ms: float,
                    max_attempts: int = 24) -> CampaignCase:
    """Greedy shrink preserving the violation signature.

    Each attempt re-runs the candidate on a *fresh* harness; an
    attempt only counts as reproducing when the signature matches
    exactly (the fuzz shrinker's contract).
    """
    current = case
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _campaign_shrink_candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            with CampaignHarness(mode, timeout_ms) as harness:
                outcome = run_campaign_case(candidate, harness,
                                            timeout_ms)
            if outcome.signature() == signature:
                current = candidate
                improved = True
                break
    return current


def _campaign_shrink_candidates(case: CampaignCase):
    # Drop fault events one at a time (last first: later events are
    # likelier to be dead weight once the storm has collapsed).
    for index in reversed(range(len(case.faults))):
        events = case.faults[:index] + case.faults[index + 1:]
        yield replace(case, faults=events)
    if case.requests > 2:
        yield replace(case, requests=case.requests - 1)
    if case.design == "random" and case.fuzz is not None:
        for smaller in _shrink_candidates(case.fuzz):
            yield replace(case, fuzz=smaller)


# ---------------------------------------------------------------------
def load_campaign_corpus(path: Optional[str]) -> List[CampaignCase]:
    if not path:
        return []
    cases: List[CampaignCase] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    cases.append(CampaignCase.from_dict(
                        data.get("case", data)))
                except (ValueError, KeyError, TypeError):
                    continue
    except OSError:
        return []
    return cases


def append_campaign_corpus(path: str,
                           result: CampaignCaseResult) -> None:
    entry = {"case": result.case.to_dict(),
             "signature": result.signature()}
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


# ---------------------------------------------------------------------
@dataclass
class CampaignReport:
    """Everything one campaign run learned."""

    seed: str
    mode: str
    cases_run: int = 0
    requests_sent: int = 0
    faults_fired: int = 0
    failures: List[CampaignCaseResult] = field(default_factory=list)
    outcomes: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed, "mode": self.mode, "ok": self.ok,
            "cases_run": self.cases_run,
            "requests_sent": self.requests_sent,
            "faults_fired": self.faults_fired,
            "outcomes": dict(self.outcomes),
            "failures": [f.to_dict() for f in self.failures],
        }


def run_campaign(seed: str = "repro", cases: int = 50,
                 mode: str = "serve", faults: bool = True,
                 timeout_ms: float = 4000.0,
                 corpus_path: Optional[str] = None,
                 do_shrink: bool = True,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> CampaignReport:
    """Run a fault-injection campaign against a live in-process fleet.

    The corpus (when given) replays first; fresh cases follow.  Every
    failing fresh case is shrunk (unless ``do_shrink`` is off) and
    appended to the corpus.
    """
    from repro.obs import TRACER

    report = CampaignReport(seed=seed, mode=mode)
    replay = load_campaign_corpus(corpus_path)
    fresh = list(generate_campaign_cases(seed, cases, mode,
                                         faults=faults))
    was_enabled = TRACER.enabled
    TRACER.configure(enabled=True, sample_rate=1.0)
    try:
        with CampaignHarness(mode, timeout_ms) as harness:
            for origin, case in ([("corpus", c) for c in replay]
                                 + [("fresh", c) for c in fresh]):
                result = run_campaign_case(case, harness, timeout_ms)
                report.cases_run += 1
                report.requests_sent += case.requests
                report.faults_fired += len(case.faults)
                for status, count in result.outcomes.items():
                    report.outcomes[status] = \
                        report.outcomes.get(status, 0) + count
                if progress is not None:
                    mark = "FAIL" if result.failed else "ok"
                    progress(f"[{origin}] case {case.seed} "
                             f"({case.design}, {case.requests} req, "
                             f"{len(case.faults)} faults): {mark}")
                if not result.failed:
                    continue
                if origin == "fresh" and do_shrink:
                    small = shrink_campaign(case, result.signature(),
                                            mode, timeout_ms)
                    if small != case:
                        with CampaignHarness(mode, timeout_ms) as h2:
                            shrunk = run_campaign_case(small, h2,
                                                       timeout_ms)
                        if shrunk.signature() == result.signature():
                            result = shrunk
                report.failures.append(result)
                if origin == "fresh" and corpus_path:
                    append_campaign_corpus(corpus_path, result)
    finally:
        TRACER.configure(enabled=was_enabled)
    return report
