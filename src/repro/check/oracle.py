"""Cross-flow differential oracle.

The three chapter flows answer the same question — does this design
admit a pin-feasible pipelined implementation at rate ``L``? — by very
different machinery (ILP feasibility + Theorem 3.1 construction,
heuristic connection search, FDS + clique partitioning).  Running them
against each other on one design catches two bug classes no single
flow can see:

* **feasibility disagreements** — one flow *proves* the design
  infeasible (:class:`repro.errors.InfeasibleError` out of the ILP)
  while another produces a result that passes the unified checker.  A
  heuristic merely *giving up* (``ConnectionError_``,
  ``SchedulingError``) proves nothing and never counts as
  disagreement.  Proofs are model-scoped: the Chapter 3 ILP bakes in
  the Theorem 3.1 interconnect shape (dedicated external bundles,
  star interchip bundles — a chip's pins facing the outside world
  never double as interchip pins), so its "infeasible" only covers
  that restricted model and is *not* refuted by a general-bus-model
  result that time-shares one port between external and interchip
  traffic across control-step groups.  The reverse direction has
  teeth: Chapter 3 interconnects are a subset of general ones, so a
  general-flow infeasibility proof is refuted by *any* clean result;
* **checker gaps** — a result that is clean under its flow's own
  scattered ``verify()`` but dirty under the unified
  :func:`repro.check.check_result` (a rule the legacy verifier
  missed), or the reverse (a unified-checker blind spot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.check.report import CheckReport
from repro.check.rules import PIN_RULES, check_result
from repro.errors import InfeasibleError, ReproError
from repro.partition.simple import is_simple_partitioning
from repro.robustness.budget import BudgetExhausted, SolveBudget

#: Flow outcome classifications.
OK = "ok"                      #: produced a result
INFEASIBLE = "infeasible"      #: proved there is no solution
GAVE_UP = "gave-up"            #: heuristic failure — proves nothing
BUDGET = "budget"              #: ran out of solve budget

#: Interconnect model each flow's results/proofs live in.  A proof in
#: the "chapter3" model (disjoint external/interchip pin nets) does not
#: refute a "general" result; a "general" proof refutes everything.
FLOW_MODEL = {
    "simple": "chapter3",
    "connection-first": "general",
    "schedule-first": "general",
}


def proof_refutes(prover_flow: str, producer_flow: str) -> bool:
    """Whether ``prover_flow``'s infeasibility proof covers results the
    ``producer_flow`` can emit (see the module docstring)."""
    prover = FLOW_MODEL.get(prover_flow, "general")
    producer = FLOW_MODEL.get(producer_flow, "general")
    return prover == "general" or producer == "chapter3"


@dataclass
class FlowOutcome:
    """What one flow (under one scheduler backend) did with the design."""

    flow: str
    outcome: str
    error: Optional[str] = None
    own_problems: List[str] = field(default_factory=list)
    report: Optional[CheckReport] = None
    declared_overruns: bool = False
    result: Optional[object] = None
    scheduler: Optional[str] = None

    @property
    def label(self) -> str:
        """Participant name for messages: flow, plus the scheduler
        backend when the run pinned a non-default one."""
        if self.scheduler is None:
            return self.flow
        return f"{self.flow}[{self.scheduler}]"

    @property
    def produced_clean(self) -> bool:
        """Produced a result the unified checker fully accepts.

        Declared pin overruns do *not* count as clean: a result that
        ignores the pin budgets cannot refute an ILP infeasibility
        proof made under those budgets.
        """
        return self.outcome == OK and self.report is not None \
            and self.report.ok

    @property
    def acceptable(self) -> bool:
        """No violations beyond openly-declared pin overruns."""
        if self.outcome != OK or self.report is None:
            return True
        if self.report.ok:
            return True
        if self.declared_overruns:
            return all(v.rule in PIN_RULES
                       for v in self.report.violations)
        return False

    def to_dict(self) -> Dict[str, object]:
        return {
            "flow": self.flow,
            "scheduler": self.scheduler,
            "outcome": self.outcome,
            "error": self.error,
            "own_problems": list(self.own_problems),
            "declared_overruns": self.declared_overruns,
            "report": None if self.report is None
            else self.report.to_dict(),
        }


@dataclass
class OracleReport:
    """Everything one differential run produced."""

    outcomes: List[FlowOutcome] = field(default_factory=list)
    disagreements: List[str] = field(default_factory=list)
    checker_gaps: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements and not self.checker_gaps \
            and all(o.acceptable for o in self.outcomes)

    def violations(self) -> List[str]:
        """Unified-checker violations not covered by a flow's openly
        declared pin overruns."""
        out = []
        for outcome in self.outcomes:
            if outcome.report is None:
                continue
            for violation in outcome.report.violations:
                if outcome.declared_overruns \
                        and violation.rule in PIN_RULES:
                    continue
                out.append(f"{outcome.label}: [{violation.rule}] "
                           f"{violation.message}")
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "outcomes": [o.to_dict() for o in self.outcomes],
            "disagreements": list(self.disagreements),
            "checker_gaps": list(self.checker_gaps),
        }


def applicable_flows(graph, partitioning) -> List[str]:
    """Flows that can run the design at all.

    The Chapter 3 flow requires a simple partitioning with
    unidirectional pins; the other two take anything.
    """
    flows = []
    if is_simple_partitioning(graph) \
            and not partitioning.any_bidirectional():
        flows.append("simple")
    flows.extend(["connection-first", "schedule-first"])
    return flows


def _participants(flows: Sequence[str],
                  schedulers: Optional[Sequence[str]]
                  ) -> List[tuple]:
    """Expand flows into ``(flow, scheduler_or_None)`` participants.

    Without ``schedulers`` each flow runs once under its default
    backend (``None``).  With ``schedulers``, each flow runs once per
    named backend that supports it (aliases resolve to their canonical
    name first); a flow no requested backend supports still runs once
    under its default so the cross-comparison keeps its baseline.
    """
    if not schedulers:
        return [(flow, None) for flow in flows]
    from repro.pipeline.registry import resolve_scheduler, scheduler_backend
    out: List[tuple] = []
    for flow in flows:
        matched = False
        seen = set()
        for name in schedulers:
            canonical = resolve_scheduler(name)
            if canonical in seen:
                continue
            seen.add(canonical)
            backend = scheduler_backend(canonical)
            if backend is not None and flow in backend.flows:
                out.append((flow, canonical))
                matched = True
        if not matched:
            out.append((flow, None))
    return out


def run_differential(graph, partitioning, timing, initiation_rate,
                     flows: Optional[Sequence[str]] = None,
                     timeout_ms: Optional[float] = None,
                     resources=None,
                     keep_results: bool = False,
                     schedulers: Optional[Sequence[str]] = None
                     ) -> OracleReport:
    """Run every applicable flow on one design and cross-compare.

    ``schedulers`` widens the participant set along the backend axis:
    each flow runs once per requested scheduler backend that supports
    it (see :func:`repro.pipeline.scheduler_names`), so e.g.
    ``schedulers=("list", "heap", "modulo")`` pits the heap and modulo
    schedulers against the list baseline — and, through the flow axis,
    against FDS — on one design.

    Returns an :class:`OracleReport`; ``report.ok`` means no flow
    produced a dirty result, no feasibility disagreement, and no gap
    between any flow's own checker and the unified one.
    """
    from repro.core.flow import synthesize

    if flows is None:
        flows = applicable_flows(graph, partitioning)
    report = OracleReport()
    for flow, sched in _participants(flows, schedulers):
        budget = (None if timeout_ms is None
                  else SolveBudget(deadline_ms=timeout_ms))
        extra = {} if sched is None else {"scheduler": sched}
        try:
            result = synthesize(graph, partitioning, timing,
                                initiation_rate, flow=flow,
                                budget=budget, resources=resources,
                                **extra)
        except InfeasibleError as exc:
            report.outcomes.append(FlowOutcome(
                flow, INFEASIBLE, error=str(exc), scheduler=sched))
            continue
        except BudgetExhausted as exc:
            report.outcomes.append(FlowOutcome(
                flow, BUDGET, error=str(exc), scheduler=sched))
            continue
        except ReproError as exc:
            report.outcomes.append(FlowOutcome(
                flow, GAVE_UP, error=str(exc), scheduler=sched))
            continue
        outcome = FlowOutcome(
            flow, OK,
            own_problems=result.verify(),
            report=check_result(result),
            declared_overruns=bool(
                result.stats.get("budget_overruns")),
            result=result if keep_results else None,
            scheduler=sched)
        report.outcomes.append(outcome)

    _cross_compare(report)
    return report


def _cross_compare(report: OracleReport) -> None:
    proved_infeasible = [o for o in report.outcomes
                         if o.outcome == INFEASIBLE]
    clean = [o for o in report.outcomes if o.produced_clean]
    for loser in proved_infeasible:
        for winner in clean:
            if not proof_refutes(loser.flow, winner.flow):
                continue
            report.disagreements.append(
                f"{loser.label} proved the design infeasible but "
                f"{winner.label} produced a result the unified "
                f"checker accepts")
    for outcome in report.outcomes:
        if outcome.outcome != OK or outcome.report is None:
            continue
        own_clean = not outcome.own_problems
        unified_clean = outcome.report.ok
        if own_clean and not unified_clean:
            rules = sorted(outcome.report.by_rule())
            report.checker_gaps.append(
                f"{outcome.label}: clean under its own verify() but "
                f"the unified checker flags {rules}")
        elif unified_clean and not own_clean:
            report.checker_gaps.append(
                f"{outcome.label}: clean under the unified checker "
                f"but its own verify() reports "
                f"{outcome.own_problems}")
