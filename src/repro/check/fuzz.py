"""Seeded differential fuzzing with greedy shrinking.

Each fuzz case is a tuple of generator parameters for
:func:`repro.designs.random_designs.random_partitioned_design` plus an
initiation rate, drawn from a string-seeded stream (same determinism
contract as the generator itself: identical across processes and
``PYTHONHASHSEED`` values).  A case *fails* when the differential
oracle finds an invariant violation, a feasibility disagreement, or a
checker gap; failing cases are greedily shrunk (fewer ops, fewer
chips, lower rate, narrower width set) while the failure *signature* —
the sorted set of violated rule names and disagreement kinds — is
preserved, then appended to a replayable JSONL corpus.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.check.oracle import OracleReport, run_differential
from repro.designs.random_designs import random_partitioned_design
from repro.errors import ReproError

#: Generator parameter pools the fuzzer draws from.  Pin budgets lean
#: tight on purpose: the interesting bugs live where the budget barely
#: fits (or barely doesn't).
_N_CHIPS = (2, 3, 4)
_N_OPS = tuple(range(6, 17))
_WIDTH_SETS = ((8,), (8, 16), (4, 8, 16), (16, 24))
_PIN_BUDGETS = (12, 16, 24, 32, 48, 64, 96, 128, 256)
_RATES = (1, 2, 3, 4)


@dataclass(frozen=True)
class FuzzCase:
    """One reproducible fuzz input (pure data, JSON round-trippable)."""

    seed: int
    n_chips: int = 3
    n_ops: int = 12
    widths: Tuple[int, ...] = (8, 16)
    pin_budget: int = 256
    bidirectional: bool = False
    output_pins: Optional[int] = None
    rate: int = 1

    def build(self):
        graph, partitioning = random_partitioned_design(
            self.seed, n_chips=self.n_chips, n_ops=self.n_ops,
            widths=self.widths, pin_budget=self.pin_budget,
            bidirectional=self.bidirectional,
            output_pins=self.output_pins)
        return graph, partitioning

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed, "n_chips": self.n_chips,
            "n_ops": self.n_ops, "widths": list(self.widths),
            "pin_budget": self.pin_budget,
            "bidirectional": self.bidirectional,
            "output_pins": self.output_pins, "rate": self.rate,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzCase":
        known = dict(data)
        known.pop("signature", None)
        known["widths"] = tuple(known.get("widths", (8, 16)))
        fields = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in known.items() if k in fields})


@dataclass
class CaseResult:
    """Outcome of running the oracle on one fuzz case."""

    case: FuzzCase
    oracle: OracleReport

    @property
    def failed(self) -> bool:
        return not self.oracle.ok

    def signature(self) -> List[str]:
        """Stable failure fingerprint used to guide shrinking."""
        sig = set()
        for outcome in self.oracle.outcomes:
            if outcome.report is None or outcome.acceptable:
                continue
            for violation in outcome.report.violations:
                sig.add(f"{outcome.flow}:{violation.rule}")
        if self.oracle.disagreements:
            sig.add("disagreement")
        if self.oracle.checker_gaps:
            sig.add("checker-gap")
        return sorted(sig)


@dataclass
class FuzzReport:
    """Summary of one fuzz run."""

    cases_run: int = 0
    failures: List[CaseResult] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    disagreements: List[str] = field(default_factory=list)
    checker_gaps: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "cases_run": self.cases_run,
            "failures": [
                {"case": f.case.to_dict(),
                 "signature": f.signature(),
                 "oracle": f.oracle.to_dict()}
                for f in self.failures],
            "violations": list(self.violations),
            "disagreements": list(self.disagreements),
            "checker_gaps": list(self.checker_gaps),
        }


# ---------------------------------------------------------------------
def generate_cases(seed: str, count: int) -> Iterator[FuzzCase]:
    """Deterministic case stream for a string seed."""
    for index in range(count):
        rng = random.Random(f"repro-fuzz:{seed}:{index}")
        widths = _WIDTH_SETS[rng.randrange(len(_WIDTH_SETS))]
        pin_budget = rng.choice(_PIN_BUDGETS)
        bidirectional = rng.random() < 0.25
        output_pins = None
        if not bidirectional and rng.random() < 0.4:
            # A fixed, often lopsided, input/output split.
            output_pins = max(
                1, pin_budget // rng.choice((2, 3, 4)))
        yield FuzzCase(
            seed=rng.randrange(1_000_000),
            n_chips=rng.choice(_N_CHIPS),
            n_ops=rng.choice(_N_OPS),
            widths=widths,
            pin_budget=pin_budget,
            bidirectional=bidirectional,
            output_pins=output_pins,
            rate=rng.choice(_RATES),
        )


def run_case(case: FuzzCase,
             timeout_ms: Optional[float] = None) -> CaseResult:
    """Build the case's design and run the differential oracle."""
    from repro.explore.worker import resolve_timing

    graph, partitioning = case.build()
    timing = resolve_timing("ar")
    oracle = run_differential(graph, partitioning, timing, case.rate,
                              timeout_ms=timeout_ms)
    return CaseResult(case, oracle)


def shrink(case: FuzzCase, signature: List[str],
           timeout_ms: Optional[float] = None,
           max_attempts: int = 64) -> FuzzCase:
    """Greedy shrink: keep any reduction that preserves the signature.

    Tries, in order of simplification power: halve then decrement the
    op count, drop chips, lower the rate, collapse the width set.
    Deterministic and bounded by ``max_attempts`` oracle runs.
    """
    def still_fails(candidate: FuzzCase) -> bool:
        try:
            return run_case(candidate, timeout_ms).signature() \
                == signature
        except ReproError:
            return False

    attempts = 0
    current = case
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _shrink_candidates(current):
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
            if attempts >= max_attempts:
                break
    return current


def _shrink_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    if case.n_ops > 1:
        if case.n_ops > 2:
            yield replace(case, n_ops=case.n_ops // 2)
        yield replace(case, n_ops=case.n_ops - 1)
    if case.n_chips > 2:
        yield replace(case, n_chips=case.n_chips - 1)
    if case.rate > 1:
        yield replace(case, rate=case.rate - 1)
    if len(case.widths) > 1:
        yield replace(case, widths=(min(case.widths),))
    if case.output_pins is not None:
        yield replace(case, output_pins=None)


def fuzz(seed: str, cases: int = 200,
         timeout_ms: Optional[float] = None,
         corpus_path: Optional[str] = None,
         do_shrink: bool = True) -> FuzzReport:
    """Run a seeded fuzz campaign; shrink and record failures.

    With ``corpus_path``, previously recorded failures are replayed
    *first* (regressions fail fast) and new shrunk failures are
    appended.
    """
    report = FuzzReport()
    if corpus_path is not None:
        for case in load_corpus(corpus_path):
            _run_into(report, case, timeout_ms, shrunk=True,
                      corpus_path=None)
    for case in generate_cases(seed, cases):
        _run_into(report, case, timeout_ms, shrunk=not do_shrink,
                  corpus_path=corpus_path)
    return report


def _run_into(report: FuzzReport, case: FuzzCase,
              timeout_ms: Optional[float], shrunk: bool,
              corpus_path: Optional[str]) -> None:
    result = run_case(case, timeout_ms)
    report.cases_run += 1
    if not result.failed:
        return
    if not shrunk:
        signature = result.signature()
        small = shrink(case, signature, timeout_ms)
        if small != case:
            result = run_case(small, timeout_ms)
    report.failures.append(result)
    report.violations.extend(
        f"{result.case.to_dict()}: {m}"
        for m in result.oracle.violations())
    report.disagreements.extend(
        f"{result.case.to_dict()}: {m}"
        for m in result.oracle.disagreements)
    report.checker_gaps.extend(
        f"{result.case.to_dict()}: {m}"
        for m in result.oracle.checker_gaps)
    if corpus_path is not None:
        append_corpus(corpus_path, result)


# ---------------------------------------------------------------------
def append_corpus(path: str, result: CaseResult) -> None:
    entry = dict(result.case.to_dict(), signature=result.signature())
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def load_corpus(path: str) -> List[FuzzCase]:
    """Load a JSONL corpus, skipping blank or corrupt lines."""
    cases: List[FuzzCase] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    cases.append(FuzzCase.from_dict(json.loads(line)))
                except (ValueError, TypeError):
                    continue
    except FileNotFoundError:
        return []
    return cases
