"""The unified design-rule checker: named, toggleable invariant rules.

:func:`check_result` subsumes and extends the scattered ``verify()``
fragments (``Schedule.verify``, ``verify_bus_allocation``,
``verify_simple_allocation``, ``Interconnect.check_budget``) into one
pass over a :class:`repro.core.flow.SynthesisResult`.  Each invariant
is a named :class:`Rule` that can be toggled off individually, and
every violation is a structured :class:`~repro.check.report.Violation`
rather than a bare string.

Rule catalogue (see DESIGN.md §11 for the full table):

``scheduled``       every non-free node has a start step;
``precedence``      producers finish before consumers start;
``recursion``       data-recursive edges meet the max-time constraint;
``chaining``        ops fit their cycle window / boundary starts;
``resources``       functional-unit budgets per (chip, type, group);
``pin-budget``      port widths fit each chip's total pin budget;
``pin-split``       fixed input/output pin splits are respected;
``pin-step``        per-chip per-control-step transferred bits fit the
                    pin budget under the chip's port model;
``port-model``      buses do not mix bidirectional and unidirectional
                    port widths;
``assignment``      schedule/bus-assignment cross-consistency;
``bus-capable``     every transfer rides a bus that can carry it;
``bus-conflict``    conflict-free (bus, segment, group) occupancy over
                    each transfer's full lifetime (Thm 3.1);
``subbus``          sub-bus segment geometry: positive widths, port
                    widths within the segment sum, segments in range;
``simple-alloc``    Theorem 3.1 bit-level allocation: widths add up,
                    per-(bundle, group) bits fit, bundles reach both
                    endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from repro.cdfg.analysis import _EPS
from repro.check.report import CheckReport, Violation
from repro.errors import ConnectionError_, ReproError
from repro.partition.model import OUTSIDE_WORLD
from repro.scheduling.base import ResourcePool


@dataclass(frozen=True)
class Rule:
    """One named, individually-toggleable invariant check."""

    name: str
    description: str
    check: Callable[["object"], List[Violation]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rule({self.name!r})"


# ---------------------------------------------------------------------
# Schedule-level rules
# ---------------------------------------------------------------------
def _rule_scheduled(result) -> List[Violation]:
    out = []
    for name in result.graph.node_names():
        if name not in result.schedule.start_step:
            node = result.graph.node(name)
            if not node.is_free():
                out.append(Violation.at(
                    "scheduled", f"{name!r} is unscheduled", op=name))
    return out


def _rule_precedence(result) -> List[Violation]:
    out = []
    schedule = result.schedule
    graph = result.graph
    for edge in graph.edges():
        if edge.is_recursive():
            continue
        if edge.src not in schedule.start_step or \
                edge.dst not in schedule.start_step:
            continue
        src = graph.node(edge.src)
        dst = graph.node(edge.dst)
        if src.is_free() or dst.is_free():
            continue
        if schedule.finish_ns(edge.src) > \
                schedule.start_ns[edge.dst] + _EPS:
            out.append(Violation.at(
                "precedence",
                f"{edge.dst!r} starts at "
                f"{schedule.start_ns[edge.dst]} ns before "
                f"{edge.src!r} finishes at "
                f"{schedule.finish_ns(edge.src)} ns",
                op=edge.dst, producer=edge.src))
    return out


def _rule_recursion(result) -> List[Violation]:
    out = []
    schedule = result.schedule
    graph = result.graph
    L = result.initiation_rate
    for edge in graph.edges():
        if not edge.is_recursive():
            continue
        if edge.src not in schedule.start_step or \
                edge.dst not in schedule.start_step:
            continue
        src = graph.node(edge.src)
        c_src = max(1, schedule.timing.cycles(src))
        if schedule.step(edge.src) > (schedule.step(edge.dst)
                                      + edge.degree * L - c_src):
            out.append(Violation.at(
                "recursion",
                f"recursive edge {edge.src!r}->{edge.dst!r} "
                f"(degree {edge.degree}) violates the max-time "
                f"constraint at L={L}",
                op=edge.src, consumer=edge.dst, degree=edge.degree))
    return out


def _rule_chaining(result) -> List[Violation]:
    out = []
    schedule = result.schedule
    period = schedule.timing.clock_period
    for name, step in schedule.start_step.items():
        node = result.graph.node(name)
        if node.is_free():
            continue
        cycles = max(1, schedule.timing.cycles(node))
        if schedule.finish_ns(name) > (step + cycles) * period + _EPS:
            out.append(Violation.at(
                "chaining",
                f"{name!r} overruns its {cycles}-cycle window",
                op=name, step=step))
        if schedule.timing.must_start_at_boundary(node):
            if abs(schedule.start_ns[name] - step * period) > 1e-6:
                out.append(Violation.at(
                    "chaining",
                    f"{name!r} must start at a clock boundary",
                    op=name, step=step))
    return out


def _rule_resources(result) -> List[Violation]:
    out = []
    schedule = result.schedule
    pool = ResourcePool(result.resources, schedule.timing,
                        result.initiation_rate)
    order = sorted(schedule.start_step.items(), key=lambda kv: kv[1])
    for name, step in order:
        node = result.graph.node(name)
        if not node.is_functional():
            continue
        if not pool.try_place(node, step):
            out.append(Violation.at(
                "resources",
                f"{name!r} exceeds the functional units of partition "
                f"{node.partition} ({node.op_type}) in group "
                f"{step % result.initiation_rate}",
                op=name, chip=node.partition,
                group=step % result.initiation_rate))
    return out


# ---------------------------------------------------------------------
# Pin-accounting rules
# ---------------------------------------------------------------------
def _interconnects(result) -> List:
    """Every interconnect a result carries (0, 1, or 2 of them)."""
    out = []
    if result.interconnect is not None:
        out.append(result.interconnect)
    if result.simple_allocation is not None:
        out.append(result.simple_allocation.interconnect)
    return out


def _rule_pin_budget(result) -> List[Violation]:
    out = []
    for interconnect in _interconnects(result):
        for index in result.partitioning.indices():
            used = interconnect.pins_used(index)
            budget = result.partitioning.total_pins(index)
            if used > budget:
                out.append(Violation.at(
                    "pin-budget",
                    f"partition {index} uses {used} pins "
                    f"(> budget {budget})",
                    chip=index, used=used, budget=budget))
    return out


def _rule_pin_split(result) -> List[Violation]:
    """Fixed input/output splits: per-direction port sums must fit."""
    out = []
    for interconnect in _interconnects(result):
        for index in result.partitioning.indices():
            spec = result.partitioning.chip(index)
            if not spec.split_fixed:
                continue
            in_used = sum(b.in_widths.get(index, 0)
                          for b in interconnect.buses)
            out_used = sum(b.out_widths.get(index, 0)
                           for b in interconnect.buses)
            if in_used > spec.input_pins:
                out.append(Violation.at(
                    "pin-split",
                    f"partition {index} uses {in_used} input pins "
                    f"(> fixed split {spec.input_pins})",
                    chip=index, used=in_used,
                    budget=spec.input_pins))
            if out_used > spec.output_pins:
                out.append(Violation.at(
                    "pin-split",
                    f"partition {index} uses {out_used} output pins "
                    f"(> fixed split {spec.output_pins})",
                    chip=index, used=out_used,
                    budget=spec.output_pins))
    return out


def _step_bits(result) -> Tuple[Dict[Tuple[int, int], int],
                                Dict[Tuple[int, int], int]]:
    """(chip, group) -> transferred bits, split by direction.

    Same-value transfers leaving one chip in the same control *step*
    count once on the source side (one output port drives all readers,
    the ILP's ``y`` treatment); each destination pays its own bits.
    """
    L = result.initiation_rate
    schedule = result.schedule
    out_bits: Dict[Tuple[int, int], int] = {}
    in_bits: Dict[Tuple[int, int], int] = {}
    out_seen: Set[Tuple[int, str, int]] = set()
    for node in result.graph.io_nodes():
        if node.name not in schedule.start_step:
            continue
        step = schedule.step(node.name)
        group = step % L
        src, dst = node.source_partition, node.dest_partition
        src_key = (src, node.value or node.name, step)
        if src_key not in out_seen:
            out_seen.add(src_key)
            out_bits[(src, group)] = out_bits.get((src, group), 0) \
                + node.bit_width
        in_bits[(dst, group)] = in_bits.get((dst, group), 0) \
            + node.bit_width
    return out_bits, in_bits


def _rule_pin_step(result) -> List[Violation]:
    """Per-chip per-control-step pin budgets under both port models.

    A necessary condition independent of any interconnect: the bits a
    chip moves in one control-step group must fit its pins.  With a
    fixed split each direction pays its own pins per group; with a
    free split some single split must cover every group's peaks; with
    bidirectional pins both directions share the pool *within* each
    group (a pin drives or samples in a given cycle, never both).
    """
    out: List[Violation] = []
    out_bits, in_bits = _step_bits(result)
    L = result.initiation_rate
    for index in result.partitioning.indices():
        spec = result.partitioning.chip(index)
        per_group = [(g, out_bits.get((index, g), 0),
                      in_bits.get((index, g), 0)) for g in range(L)]
        if spec.bidirectional:
            for group, o_bits, i_bits in per_group:
                if o_bits + i_bits > spec.total_pins:
                    out.append(Violation.at(
                        "pin-step",
                        f"partition {index} moves {o_bits + i_bits} "
                        f"bits in group {group} over "
                        f"{spec.total_pins} bidirectional pins",
                        chip=index, group=group,
                        bits=o_bits + i_bits))
        elif spec.split_fixed:
            for group, o_bits, i_bits in per_group:
                if o_bits > spec.output_pins:
                    out.append(Violation.at(
                        "pin-step",
                        f"partition {index} drives {o_bits} bits in "
                        f"group {group} over {spec.output_pins} "
                        f"output pins",
                        chip=index, group=group, bits=o_bits))
                if i_bits > spec.input_pins:
                    out.append(Violation.at(
                        "pin-step",
                        f"partition {index} samples {i_bits} bits in "
                        f"group {group} over {spec.input_pins} "
                        f"input pins",
                        chip=index, group=group, bits=i_bits))
        else:
            peak_out = max((o for _g, o, _i in per_group), default=0)
            peak_in = max((i for _g, _o, i in per_group), default=0)
            if peak_out + peak_in > spec.total_pins:
                out.append(Violation.at(
                    "pin-step",
                    f"partition {index} needs {peak_out} output + "
                    f"{peak_in} input pins at its per-group peaks "
                    f"(> pool of {spec.total_pins})",
                    chip=index, bits=peak_out + peak_in))
    return out


# ---------------------------------------------------------------------
# Bus-level rules (connection-first / schedule-first results)
# ---------------------------------------------------------------------
def _rule_port_model(result) -> List[Violation]:
    out = []
    for interconnect in _interconnects(result):
        for bus in interconnect.buses:
            if bus.bi_widths and (bus.out_widths or bus.in_widths):
                out.append(Violation.at(
                    "port-model",
                    f"bus {bus.index} mixes bidirectional and "
                    f"unidirectional port widths",
                    bus=bus.index))
    return out


def _rule_assignment(result) -> List[Violation]:
    """Schedule <-> bus-assignment cross-consistency."""
    out = []
    if result.assignment is None:
        return out
    schedule = result.schedule
    io_names = {n.name for n in result.graph.io_nodes()}
    for node in result.graph.io_nodes():
        if node.name not in result.assignment.bus_of:
            out.append(Violation.at(
                "assignment", f"I/O op {node.name!r} has no bus",
                op=node.name))
        elif node.name not in schedule.start_step:
            out.append(Violation.at(
                "assignment", f"I/O op {node.name!r} is unscheduled",
                op=node.name))
    for op in result.assignment.bus_of:
        if op not in io_names:
            out.append(Violation.at(
                "assignment",
                f"bus assignment names unknown I/O op {op!r}",
                op=op))
    return out


def _rule_bus_capable(result) -> List[Violation]:
    out = []
    if result.interconnect is None or result.assignment is None:
        return out
    for node in result.graph.io_nodes():
        name = node.name
        if name not in result.assignment.bus_of:
            continue
        bus_index, segment = result.assignment.of(name)
        try:
            bus = result.interconnect.bus(bus_index)
        except ConnectionError_:
            out.append(Violation.at(
                "bus-capable",
                f"{name!r} is assigned to nonexistent bus {bus_index}",
                op=name, bus=bus_index))
            continue
        if not bus.capable(node, segment):
            out.append(Violation.at(
                "bus-capable",
                f"bus {bus_index} cannot carry {name!r} "
                f"({node.bit_width} bits from "
                f"P{node.source_partition} to "
                f"P{node.dest_partition} at segment {segment})",
                op=name, bus=bus_index, segment=segment))
    return out


def _rule_bus_conflict(result) -> List[Violation]:
    """Conflict-free occupancy over each transfer's full lifetime.

    Two transfers may hold the same (bus, segment, control-step group)
    only if, in the same control step, they move the same value — or
    are mutually exclusive by their guards.  Different steps in one
    group always mean different pipeline instances, where neither
    sharing nor exclusivity can help (Thm 3.1).  Multi-cycle transfers
    occupy every group their lifetime crosses, not just the start.
    """
    out = []
    if result.interconnect is None or result.assignment is None:
        return out
    graph = result.graph
    schedule = result.schedule
    L = result.initiation_rate
    occupancy: Dict[Tuple[int, int, int], List[Tuple[int, str]]] = {}
    for node in graph.io_nodes():
        name = node.name
        if name not in result.assignment.bus_of or \
                name not in schedule.start_step:
            continue  # the assignment rule reports these
        bus_index, segment = result.assignment.of(name)
        try:
            bus = result.interconnect.bus(bus_index)
            spanned = bus.segments_spanned(node, segment)
        except ConnectionError_:
            continue  # the bus-capable rule reports these
        step = schedule.step(name)
        cycles = max(1, schedule.timing.cycles(node))
        for offset in range(cycles):
            group = (step + offset) % L
            for seg in spanned:
                key = (bus_index, seg, group)
                for other_step, other in occupancy.get(key, []):
                    other_node = graph.node(other)
                    same_value = ((node.value or name)
                                  == (other_node.value or other)
                                  and other_step == step)
                    exclusive = (other_step == step
                                 and node.mutually_exclusive_with(
                                     other_node))
                    if not (same_value or exclusive):
                        out.append(Violation.at(
                            "bus-conflict",
                            f"bus {bus_index} segment {seg} group "
                            f"{group}: {name!r} conflicts with "
                            f"{other!r}",
                            op=name, other=other, bus=bus_index,
                            segment=seg, group=group))
                occupancy.setdefault(key, []).append((step, name))
    return out


def _rule_subbus(result) -> List[Violation]:
    """Sub-bus geometry: segment widths, sums, and index ranges."""
    out = []
    for interconnect in _interconnects(result):
        for bus in interconnect.buses:
            if not bus.segments:
                continue
            if any(s <= 0 for s in bus.segments):
                out.append(Violation.at(
                    "subbus",
                    f"bus {bus.index} has a non-positive sub-bus "
                    f"segment in {bus.segments}",
                    bus=bus.index))
            width = sum(bus.segments)
            ports = list(bus.out_widths.items()) \
                + list(bus.in_widths.items()) \
                + list(bus.bi_widths.items())
            for chip, port in ports:
                if port > width:
                    out.append(Violation.at(
                        "subbus",
                        f"bus {bus.index}: partition {chip}'s port of "
                        f"{port} bits exceeds the segment sum {width}",
                        bus=bus.index, chip=chip))
    if result.assignment is not None and result.interconnect is not None:
        for op, segment in result.assignment.segment_of.items():
            bus_index = result.assignment.bus_of.get(op)
            if bus_index is None:
                continue
            try:
                bus = result.interconnect.bus(bus_index)
            except ConnectionError_:
                continue  # the bus-capable rule reports these
            if segment < 0 or segment >= bus.n_segments:
                out.append(Violation.at(
                    "subbus",
                    f"{op!r} starts at segment {segment} of bus "
                    f"{bus_index} which has {bus.n_segments} segments",
                    op=op, bus=bus_index, segment=segment))
    return out


# ---------------------------------------------------------------------
# Simple-flow (Theorem 3.1 bundle) rules
# ---------------------------------------------------------------------
def _rule_simple_alloc(result) -> List[Violation]:
    out = []
    if result.simple_allocation is None:
        return out
    allocation = result.simple_allocation
    interconnect = allocation.interconnect
    schedule = result.schedule
    L = result.initiation_rate
    usage: Dict[Tuple[int, int], int] = {}
    shared_seen: Dict[Tuple[int, int, str, int], int] = {}
    for node in result.graph.io_nodes():
        name = node.name
        alloc = allocation.allocation.get(name)
        if alloc is None:
            out.append(Violation.at(
                "simple-alloc", f"I/O op {name!r} has no allocation",
                op=name))
            continue
        if name not in schedule.start_step:
            out.append(Violation.at(
                "simple-alloc", f"I/O op {name!r} is unscheduled",
                op=name))
            continue
        total = sum(bits for _bus, bits in alloc)
        if total != node.bit_width:
            out.append(Violation.at(
                "simple-alloc",
                f"{name!r}: allocated {total} bits != width "
                f"{node.bit_width}",
                op=name, bits=total))
        group = schedule.group(name)
        step = schedule.step(name)
        for bus_index, bits in alloc:
            try:
                bus = interconnect.bus(bus_index)
            except ConnectionError_:
                out.append(Violation.at(
                    "simple-alloc",
                    f"{name!r} uses nonexistent bundle {bus_index}",
                    op=name, bus=bus_index))
                continue
            if bus.out_widths.get(node.source_partition, 0) < bits or \
                    bus.in_widths.get(node.dest_partition, 0) < bits:
                out.append(Violation.at(
                    "simple-alloc",
                    f"bundle {bus_index} cannot carry {bits} bits of "
                    f"{name!r} from P{node.source_partition} to "
                    f"P{node.dest_partition}",
                    op=name, bus=bus_index, bits=bits))
            # Same value, same step, same bundle counts once.
            key = (bus_index, group, node.value or name, step)
            already = shared_seen.get(key, 0)
            extra = max(0, bits - already)
            shared_seen[key] = max(already, bits)
            usage[(bus_index, group)] = usage.get(
                (bus_index, group), 0) + extra
    for (bus_index, group), bits in sorted(usage.items()):
        width = interconnect.bus(bus_index).width
        if bits > width:
            out.append(Violation.at(
                "simple-alloc",
                f"bundle {bus_index} group {group}: {bits} bits on "
                f"{width} wires",
                bus=bus_index, group=group, bits=bits))
    return out


# ---------------------------------------------------------------------
#: Every rule, in the order they run and report.
RULES: Tuple[Rule, ...] = (
    Rule("scheduled", "every non-free node has a start step",
         _rule_scheduled),
    Rule("precedence", "producers finish before consumers start",
         _rule_precedence),
    Rule("recursion", "recursive edges meet the max-time constraint",
         _rule_recursion),
    Rule("chaining", "ops fit their cycle windows / boundary starts",
         _rule_chaining),
    Rule("resources", "functional-unit budgets per chip/type/group",
         _rule_resources),
    Rule("pin-budget", "port widths fit each chip's total pin budget",
         _rule_pin_budget),
    Rule("pin-split", "fixed input/output pin splits are respected",
         _rule_pin_split),
    Rule("pin-step", "per-chip per-step transferred bits fit the pins",
         _rule_pin_step),
    Rule("port-model", "buses do not mix port models",
         _rule_port_model),
    Rule("assignment", "schedule and bus assignment cross-check",
         _rule_assignment),
    Rule("bus-capable", "every transfer rides a capable bus",
         _rule_bus_capable),
    Rule("bus-conflict", "conflict-free bus occupancy (Thm 3.1)",
         _rule_bus_conflict),
    Rule("subbus", "sub-bus segment geometry and width sums",
         _rule_subbus),
    Rule("simple-alloc", "Theorem 3.1 bit-level allocation invariants",
         _rule_simple_alloc),
)

_RULES_BY_NAME: Dict[str, Rule] = {rule.name: rule for rule in RULES}


def rule_names() -> List[str]:
    return [rule.name for rule in RULES]


def check_result(result, rules: Optional[Sequence[str]] = None,
                 disable: Iterable[str] = ()) -> CheckReport:
    """Run the unified design-rule checker over one synthesis result.

    ``rules`` restricts the run to the named rules (default: all);
    ``disable`` removes individual rules from whatever set is selected.
    Unknown rule names raise :class:`repro.errors.ReproError` so typos
    cannot silently skip checks.
    """
    selected = list(RULES) if rules is None else [
        _lookup(name) for name in rules]
    disabled = {name for name in disable}
    for name in disabled:
        _lookup(name)  # validate
    report = CheckReport()
    for rule in selected:
        if rule.name in disabled:
            report.rules_skipped.append(rule.name)
            continue
        report.rules_run.append(rule.name)
        report.violations.extend(rule.check(result))
    return report


def _lookup(name: str) -> Rule:
    try:
        return _RULES_BY_NAME[name]
    except KeyError:
        raise ReproError(
            f"unknown check rule {name!r}; expected one of "
            f"{rule_names()}") from None


#: Pin-accounting rules the schedule-first flow may violate *openly*:
#: it minimizes pins instead of respecting a budget and declares every
#: overrun in ``stats["budget_overruns"]`` (the Chapter 5 contract).
PIN_RULES: Tuple[str, ...] = ("pin-budget", "pin-step", "pin-split")


def enforceable_violations(result, report: CheckReport) -> List[Violation]:
    """Violations a caller should act on.

    Pin-accounting violations covered by the result's openly declared
    overruns (``stats["budget_overruns"]``, schedule-first contract)
    are degradations, not bugs; everything else is enforceable.
    """
    if not result.stats.get("budget_overruns"):
        return list(report.violations)
    return [v for v in report.violations if v.rule not in PIN_RULES]
