"""Structured violation records and check reports.

A :class:`Violation` is one broken invariant, tagged with the
:class:`~repro.check.rules.Rule` that found it and enough structured
context (``where``) to locate the offending op / bus / chip / group
without parsing the message.  A :class:`CheckReport` aggregates the
violations of one :func:`repro.check.check_result` run together with
the set of rules that actually ran, so "clean" is always relative to
an explicit rule set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import ReproError


class CheckError(ReproError):
    """A checked synthesis result carries invariant violations."""

    def __init__(self, report: "CheckReport") -> None:
        super().__init__(
            "synthesis result failed the design-rule check:\n  "
            + "\n  ".join(v.message for v in report.violations))
        self.report = report


@dataclass(frozen=True)
class Violation:
    """One broken invariant.

    ``rule`` names the :class:`~repro.check.rules.Rule` that fired;
    ``where`` holds structured locators (``op``, ``bus``, ``chip``,
    ``group``, ``step``, ``segment`` — whichever apply).
    """

    rule: str
    message: str
    where: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def at(cls, rule: str, message: str, **where: Any) -> "Violation":
        return cls(rule=rule, message=message,
                   where=tuple(sorted(where.items())))

    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.rule, "message": self.message,
                "where": dict(self.where)}


@dataclass
class CheckReport:
    """Everything one :func:`repro.check.check_result` run produced."""

    violations: List[Violation] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)
    rules_skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_rule(self) -> Dict[str, List[Violation]]:
        out: Dict[str, List[Violation]] = {}
        for violation in self.violations:
            out.setdefault(violation.rule, []).append(violation)
        return out

    def messages(self) -> List[str]:
        return [f"[{v.rule}] {v.message}" for v in self.violations]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "rules_run": list(self.rules_run),
            "rules_skipped": list(self.rules_skipped),
        }

    def raise_if_violations(self) -> "CheckReport":
        if self.violations:
            raise CheckError(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ok" if self.ok else f"{len(self.violations)} violations"
        return f"CheckReport({state}, {len(self.rules_run)} rules)"
