"""Deterministic fault schedules for service-path fuzz campaigns.

A :class:`FaultEvent` is pure data — ``(kind, at, arg)`` — drawn from
the same string-seeded streams as the fuzz cases themselves, so a
campaign case is fully described by ``(design, fault schedule)`` and
replays from the corpus byte-identically.  ``at`` indexes the request
inside the case's storm: the injector fires every event scheduled at
``i`` immediately before request ``i`` is launched.

The injector itself only *translates* events into calls on a harness
(kill this shard, truncate the cache file, stall the next client);
the harness — :mod:`repro.check.campaign` owns the live servers — is
handed in, so the fault model stays independent of how the fleet is
hosted.  ``finish()`` heals everything the schedule broke (restarts
killed shards, revives the cache server) so the post-case invariant
sweep always talks to a complete fleet.
"""

from __future__ import annotations

import random
import socket
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Fault kinds applicable to a single-service (``--serve``) campaign.
SERVE_KINDS = (
    "cache-kill",     # stop the shared cache server
    "cache-revive",   # bring it back on the same port
    "cache-torn",     # simulate a crash mid-append: torn last line
    "cache-corrupt",  # append a whole corrupt JSONL line
    "client-delay",   # stall before the next request (arg = ms)
    "client-drop",    # open a connection, send garbage, hang up
    "retry-storm",    # burst of no-wait fillers to provoke 429 sheds
)

#: Additional kinds for a ``--cluster`` campaign.
CLUSTER_KINDS = SERVE_KINDS + (
    "shard-kill",     # SIGTERM-equivalent: stop shard (arg = index)
    "shard-restart",  # restart a previously killed shard (arg = index)
)

_DELAYS_MS = (5, 10, 25, 50)
_STORM_SIZES = (4, 8, 12)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled perturbation (pure data, JSON round-trippable)."""

    kind: str
    at: int = 0
    arg: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"kind": self.kind, "at": self.at, "arg": self.arg}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        return cls(kind=str(data.get("kind", "")),
                   at=int(data.get("at", 0)),
                   arg=int(data.get("arg", 0)))


def generate_events(rng: random.Random, n_requests: int,
                    mode: str) -> Tuple[FaultEvent, ...]:
    """Draw a small fault schedule for one case (possibly empty)."""
    kinds = CLUSTER_KINDS if mode == "cluster" else SERVE_KINDS
    count = rng.choice((0, 1, 1, 2, 2, 3))
    events: List[FaultEvent] = []
    for _ in range(count):
        kind = rng.choice(kinds)
        at = rng.randrange(max(1, n_requests))
        if kind == "client-delay":
            arg = rng.choice(_DELAYS_MS)
        elif kind == "retry-storm":
            arg = rng.choice(_STORM_SIZES)
        elif kind in ("shard-kill", "shard-restart"):
            arg = rng.randrange(2)
        else:
            arg = 0
        events.append(FaultEvent(kind=kind, at=at, arg=arg))
    # Deterministic firing order within a request index.
    return tuple(sorted(events, key=lambda e: (e.at, e.kind, e.arg)))


class FaultInjector:
    """Binds a fault schedule to a live campaign harness.

    The harness duck-type (see ``CampaignHarness``):

    * ``kill_shard(i)`` / ``restart_shard(i)`` — no-ops in serve mode
    * ``kill_cache()`` / ``revive_cache()``
    * ``cache_file`` — backing JSONL path of the cache server
    * ``host`` / ``port`` — the front door clients talk to
    * ``storm(n)`` — fire ``n`` rapid no-wait filler submissions
    """

    def __init__(self, events: Sequence[FaultEvent], harness) -> None:
        self.events = tuple(events)
        self.harness = harness
        self.fired = 0
        self.delay_ms = 0.0
        self._killed_shards: set = set()
        self._cache_dead = False

    # ------------------------------------------------------------------
    def before_request(self, index: int) -> float:
        """Fire every event scheduled at ``index``.

        Returns the client-side delay (seconds) the caller should
        sleep before launching the request — delays stall the
        *launcher*, not the injector.
        """
        delay_s = 0.0
        for event in self.events:
            if event.at != index:
                continue
            self.fired += 1
            if event.kind == "client-delay":
                delay_s += event.arg / 1000.0
            else:
                self._fire(event)
        return delay_s

    def _fire(self, event: FaultEvent) -> None:
        h = self.harness
        if event.kind == "shard-kill":
            if h.kill_shard(event.arg):
                self._killed_shards.add(event.arg % h.n_shards)
        elif event.kind == "shard-restart":
            index = event.arg % max(1, h.n_shards)
            if index in self._killed_shards \
                    and h.restart_shard(index):
                self._killed_shards.discard(index)
        elif event.kind == "cache-kill":
            if h.kill_cache():
                self._cache_dead = True
        elif event.kind == "cache-revive":
            if self._cache_dead and h.revive_cache():
                self._cache_dead = False
        elif event.kind == "cache-torn":
            _append_bytes(h.cache_file,
                          b'{"v": 1, "key": "torn", "record":')
        elif event.kind == "cache-corrupt":
            _append_bytes(h.cache_file, b"not json at all\n")
        elif event.kind == "client-drop":
            _drop_connection(h.host, h.port)
        elif event.kind == "retry-storm":
            h.storm(event.arg)

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Heal everything this schedule broke."""
        for index in sorted(self._killed_shards):
            self.harness.restart_shard(index)
        self._killed_shards.clear()
        if self._cache_dead:
            self.harness.revive_cache()
            self._cache_dead = False

    # -- bookkeeping the invariant checker reads -----------------------
    @property
    def shard_kills(self) -> int:
        return sum(1 for e in self.events if e.kind == "shard-kill")

    @property
    def disruptive(self) -> bool:
        """Whether the schedule can legitimately surface shed/refusal
        errors to a retrying client (as opposed to pure perturbation a
        healthy fleet must absorb silently)."""
        return any(e.kind in ("shard-kill", "cache-kill",
                              "retry-storm")
                   for e in self.events)


# ---------------------------------------------------------------------
def _append_bytes(path: Optional[str], data: bytes) -> None:
    """Simulate a crashed writer: raw bytes straight into the file."""
    if not path:
        return
    try:
        with open(path, "ab") as handle:
            handle.write(data)
    except OSError:
        pass


def _drop_connection(host: str, port: int) -> None:
    """Open a connection, send a truncated request, hang up."""
    try:
        with socket.create_connection((host, port), timeout=1.0) as s:
            s.sendall(b"POST /v1/synthesize HTTP/1.1\r\n"
                      b"Content-Length: 9999\r\n\r\n{\"des")
    except OSError:
        pass
