"""Unified design-rule checking, differential testing, and fuzzing.

* :func:`check_result` — one checker subsuming the scattered
  ``verify()`` fragments; every invariant is a named, toggleable
  :class:`Rule` producing structured :class:`Violation` records.
* :func:`run_differential` — runs all applicable flows on one design
  and flags feasibility disagreements and checker gaps.
* :func:`fuzz` — seeded random-design campaigns with greedy shrinking
  and a replayable JSONL corpus.
"""

from repro.check.fuzz import (CaseResult, FuzzCase, FuzzReport,
                              fuzz, generate_cases, load_corpus,
                              run_case, shrink)
from repro.check.oracle import (FlowOutcome, OracleReport,
                                applicable_flows, proof_refutes,
                                run_differential)
from repro.check.report import CheckError, CheckReport, Violation
from repro.check.rules import RULES, Rule, check_result, rule_names

__all__ = [
    "CaseResult", "CheckError", "CheckReport", "FlowOutcome",
    "FuzzCase", "FuzzReport", "OracleReport", "RULES", "Rule",
    "Violation", "applicable_flows", "check_result", "fuzz",
    "generate_cases", "load_corpus", "proof_refutes", "rule_names",
    "run_case", "run_differential", "shrink",
]
