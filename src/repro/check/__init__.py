"""Unified design-rule checking, differential testing, and fuzzing.

* :func:`check_result` — one checker subsuming the scattered
  ``verify()`` fragments; every invariant is a named, toggleable
  :class:`Rule` producing structured :class:`Violation` records.
* :func:`run_differential` — runs all applicable flows on one design
  and flags feasibility disagreements and checker gaps.
* :func:`fuzz` — seeded random-design campaigns with greedy shrinking
  and a replayable JSONL corpus.
* :func:`run_campaign` — the same fuzz cases driven through a live
  in-process service or cluster while a deterministic fault injector
  (:mod:`repro.check.faults`) perturbs the fleet, with fleet-level
  invariants checked after every storm.
"""

from repro.check.campaign import (CampaignCase, CampaignCaseResult,
                                  CampaignHarness, CampaignReport,
                                  generate_campaign_cases,
                                  run_campaign, run_campaign_case)
from repro.check.faults import (CLUSTER_KINDS, SERVE_KINDS,
                                FaultEvent, FaultInjector,
                                generate_events)
from repro.check.fuzz import (CaseResult, FuzzCase, FuzzReport,
                              fuzz, generate_cases, load_corpus,
                              run_case, shrink)
from repro.check.oracle import (FlowOutcome, OracleReport,
                                applicable_flows, proof_refutes,
                                run_differential)
from repro.check.report import CheckError, CheckReport, Violation
from repro.check.rules import RULES, Rule, check_result, rule_names

__all__ = [
    "CLUSTER_KINDS", "CampaignCase", "CampaignCaseResult",
    "CampaignHarness", "CampaignReport", "CaseResult", "CheckError",
    "CheckReport", "FaultEvent", "FaultInjector", "FlowOutcome",
    "FuzzCase", "FuzzReport", "OracleReport", "RULES", "Rule",
    "SERVE_KINDS", "Violation", "applicable_flows", "check_result",
    "fuzz", "generate_campaign_cases", "generate_cases",
    "generate_events", "load_corpus", "proof_refutes", "rule_names",
    "run_campaign", "run_campaign_case", "run_case",
    "run_differential", "shrink",
]
