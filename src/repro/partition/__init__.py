"""Partitioning model: chips, pin budgets, and the simple/general split.

Partitioning itself happens *before* synthesis (the dissertation assumes
a behavioral partitioner such as CHOP produced the clusters); this
package models the result — which operation lives on which chip, how
many data-transfer pins each chip has — and classifies a partitioning as
*simple* (Definition 3.2) or general, which selects the synthesis flow.
"""

from repro.partition.model import ChipSpec, Partitioning, OUTSIDE_WORLD
from repro.partition.simple import (
    driver_graph,
    is_simple_partitioning,
    simple_partitioning_violations,
)
from repro.partition.io_insertion import (
    insert_io_nodes,
    externalize_world_io,
)
from repro.partition.auto import (
    PartitionResult,
    partition_cdfg,
    partition_and_synthesize,
)

__all__ = [
    "ChipSpec",
    "Partitioning",
    "OUTSIDE_WORLD",
    "driver_graph",
    "is_simple_partitioning",
    "simple_partitioning_violations",
    "insert_io_nodes",
    "externalize_world_io",
    "PartitionResult",
    "partition_cdfg",
    "partition_and_synthesize",
]
