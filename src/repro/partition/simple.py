"""Simple-partitioning classification (Definitions 3.1 and 3.2).

A partitioning is *simple* when the driver relation between partitions
is so sparse that pin feasibility alone guarantees a conflict-free
interchip connection (Theorem 3.1):

1. every partition drives at most two partitions;
2. every partition is driven by at most two partitions;
3. if a partition is driven by two partitions, its drivers drive no
   other partitions;
4. if a partition drives two partitions, it is the only driver of those
   two partitions.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.cdfg.graph import Cdfg
from repro.partition.model import OUTSIDE_WORLD


def driver_graph(graph: Cdfg,
                 include_world: bool = False) -> Dict[int, Set[int]]:
    """Map each partition to the set of partitions it *drives*.

    Partition ``a`` drives partition ``b`` when a value produced in ``a``
    is required in ``b`` (Definition 3.1), i.e. when an I/O node runs
    from ``a`` to ``b``.  The outside-world pseudo partition is excluded
    by default: transfers to/from the system's own pins use dedicated
    board wiring, not shared interchip buses, so it does not constrain
    the Definition 3.2 classification.
    """
    drives: Dict[int, Set[int]] = {}
    for node in graph.io_nodes():
        src = node.source_partition
        dst = node.dest_partition
        if not include_world and OUTSIDE_WORLD in (src, dst):
            continue
        drives.setdefault(src, set()).add(dst)
        drives.setdefault(dst, set())
    return drives


def simple_partitioning_violations(graph: Cdfg) -> List[str]:
    """All reasons the partitioning is not simple (empty = simple)."""
    drives = driver_graph(graph)
    driven_by: Dict[int, Set[int]] = {p: set() for p in drives}
    for src, dsts in drives.items():
        for dst in dsts:
            driven_by.setdefault(dst, set()).add(src)
            driven_by.setdefault(src, set())

    problems: List[str] = []
    for part, dsts in sorted(drives.items()):
        if len(dsts) > 2:
            problems.append(
                f"partition {part} drives {len(dsts)} partitions "
                f"{sorted(dsts)} (> 2)")
    for part, srcs in sorted(driven_by.items()):
        if len(srcs) > 2:
            problems.append(
                f"partition {part} is driven by {len(srcs)} partitions "
                f"{sorted(srcs)} (> 2)")

    # Condition 3: a partition driven by two partitions has exclusive
    # drivers (those drivers drive nothing else).
    for part, srcs in sorted(driven_by.items()):
        if len(srcs) == 2:
            for src in sorted(srcs):
                others = drives.get(src, set()) - {part}
                if others:
                    problems.append(
                        f"partition {part} is driven by two partitions but "
                        f"driver {src} also drives {sorted(others)}")

    # Condition 4: a partition driving two partitions is their only driver.
    for part, dsts in sorted(drives.items()):
        if len(dsts) == 2:
            for dst in sorted(dsts):
                others = driven_by.get(dst, set()) - {part}
                if others:
                    problems.append(
                        f"partition {part} drives two partitions but "
                        f"{dst} is also driven by {sorted(others)}")
    return problems


def is_simple_partitioning(graph: Cdfg) -> bool:
    """Whether the partitioned CDFG satisfies Definition 3.2."""
    return not simple_partitioning_violations(graph)


def fanout_fanin_shape(graph: Cdfg) -> Dict[int, Tuple[int, int]]:
    """Per-partition ``(#driven, #drivers)`` counts, for reporting."""
    drives = driver_graph(graph)
    driven_by: Dict[int, Set[int]] = {p: set() for p in drives}
    for src, dsts in drives.items():
        for dst in dsts:
            driven_by[dst].add(src)
    return {p: (len(drives[p]), len(driven_by[p])) for p in sorted(drives)}
