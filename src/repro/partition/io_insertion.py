"""Inserting I/O operation nodes on partition-crossing arcs.

Given a CDFG whose functional nodes are already labelled with partition
indices, :func:`insert_io_nodes` splices an I/O operation node onto
every arc whose endpoints live on different chips — one I/O node per
(value, destination partition) pair, since a value need only be input
once per chip and stored (Section 2.2.1).

:func:`externalize_world_io` rewrites external ``INPUT``/``OUTPUT``
nodes into I/O operations to/from the pseudo partition 0, which is how
the ILP formulations model system-level pin constraints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.cdfg.ops import OpKind
from repro.errors import PartitionError
from repro.partition.model import OUTSIDE_WORLD


def insert_io_nodes(graph: Cdfg, prefix: str = "X") -> List[str]:
    """Splice I/O nodes onto cross-partition arcs; return their names.

    The input graph is modified in place.  Arcs between a producer in
    partition ``a`` and consumers in partition ``b != a`` are replaced by
    ``producer -> IO -> consumer`` with a single IO node per
    ``(producer, b)`` pair.  Recursive arcs keep their degree on the
    producer -> IO leg (the transfer happens when the value is produced;
    consumption ``d`` instances later is a property of the consumer arc).
    """
    counter = 0
    created: List[str] = []
    # Collect first: we mutate the edge set while splicing.
    cross: Dict[Tuple[str, int], List] = {}
    for edge in list(graph.edges()):
        src = graph.node(edge.src)
        dst = graph.node(edge.dst)
        if src.kind is OpKind.IO or dst.kind is OpKind.IO:
            continue
        if src.partition is None or dst.partition is None:
            continue
        if src.partition != dst.partition:
            cross.setdefault((edge.src, dst.partition), []).append(edge)

    from repro.cdfg.transform import _remove_edge  # lazy: avoid cycle

    for (producer, dest_part), edges in sorted(cross.items()):
        counter += 1
        src_node = graph.node(producer)
        name = f"{prefix}{counter}"
        while name in graph:
            counter += 1
            name = f"{prefix}{counter}"
        io = Node(
            name=name,
            kind=OpKind.IO,
            op_type="io",
            bit_width=src_node.bit_width,
            value=producer,
            source_partition=src_node.partition,
            dest_partition=dest_part,
            guard=src_node.guard,
        )
        graph.add_node(io)
        graph.add_edge(producer, name)
        for edge in edges:
            graph.add_edge(name, edge.dst, edge.degree)
            _remove_edge(graph, edge)
        created.append(name)
    return created


def externalize_world_io(graph: Cdfg) -> List[str]:
    """Convert INPUT/OUTPUT nodes into I/O nodes from/to partition 0.

    An ``INPUT`` node in partition ``p`` becomes an I/O node with source
    partition :data:`OUTSIDE_WORLD` and destination ``p``; an ``OUTPUT``
    node becomes an I/O node to partition 0.  Names and graph shape are
    preserved, so figures' labels (``I1``, ``O1`` ...) stay meaningful.
    """
    converted: List[str] = []
    for node in list(graph.nodes()):
        if node.kind is OpKind.INPUT:
            if node.partition is None:
                raise PartitionError(
                    f"input {node.name!r} has no partition")
            graph.replace_node(Node(
                name=node.name,
                kind=OpKind.IO,
                op_type="io",
                bit_width=node.bit_width,
                value=node.value or node.name,
                source_partition=OUTSIDE_WORLD,
                dest_partition=node.partition,
                guard=node.guard,
            ))
            converted.append(node.name)
        elif node.kind is OpKind.OUTPUT:
            if node.partition is None:
                raise PartitionError(
                    f"output {node.name!r} has no partition")
            graph.replace_node(Node(
                name=node.name,
                kind=OpKind.IO,
                op_type="io",
                bit_width=node.bit_width,
                value=node.value or node.name,
                source_partition=node.partition,
                dest_partition=OUTSIDE_WORLD,
                guard=node.guard,
            ))
            converted.append(node.name)
    return converted
