"""Behavioral-level partitioning (the CHOP role) with synthesis feedback.

The dissertation *assumes* a partitioner: "Using predictions, the
behavioral partitioner, such as CHOP, partitions the behavioral
specification into a number of clusters in such a way that the
synthesized multi-chip design will likely be feasible" (Section 1.2),
and its closing future work asks for "useful information from the
synthesis tools [to] be fed back to guide the behavioral-level
partitioner" (Section 8.2).  This module supplies both:

* :func:`partition_cdfg` — Fiduccia–Mattheyses-style iterative
  improvement over an unpartitioned flat CDFG: minimize the *cut bits*
  (the predictor of pin cost) subject to per-chip operation-count
  balance;
* :func:`partition_and_synthesize` — the feedback loop: partition,
  insert I/O nodes, synthesize; if a chip busts its pin budget (or the
  connection search fails), raise that chip's cost weight and
  repartition;
* :func:`partition_variants` — distinct plans across seeds (deduped by
  assignment), feeding the design-space explorer's ``auto_partition``
  axis without wasting synthesis runs on identical partitionings.

This is a predictor-driven front end, not a reproduction of CHOP
itself; it exists so the repository is usable end to end from an
*unpartitioned* behavioral description.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Tuple)

from repro.cdfg.graph import Cdfg, Node
from repro.cdfg.ops import OpKind
from repro.errors import PartitionError, ReproError
from repro.partition.io_insertion import insert_io_nodes
from repro.partition.model import OUTSIDE_WORLD, Partitioning


@dataclass
class PartitionResult:
    """Assignment of functional nodes to chips plus cut statistics."""

    assignment: Dict[str, int]
    cut_bits: int
    loads: Dict[int, int]

    def apply(self, graph: Cdfg) -> Cdfg:
        """Return a copy of the graph with partitions set, external
        INPUT/OUTPUT nodes turned into world transfers (one per
        consuming chip), and I/O nodes inserted on the cut arcs."""
        from repro.cdfg.transform import _remove_edge
        from repro.partition.io_insertion import externalize_world_io

        clone = graph.copy()
        for name, chip in self.assignment.items():
            node = clone.node(name)
            clone.replace_node(Node(
                name=node.name, kind=node.kind, op_type=node.op_type,
                partition=chip, bit_width=node.bit_width,
                value=node.value, source_partition=node.source_partition,
                dest_partition=node.dest_partition, guard=node.guard))
        externalize_world_io(clone)
        # An external input consumed on several chips becomes several
        # sibling transfers of one value (Section 2.2.1's multi-output
        # option) — a transfer never routes through another chip.
        counter = 0
        for node in list(clone.io_nodes()):
            if node.source_partition != OUTSIDE_WORLD:
                continue
            foreign = [e for e in clone.out_edges(node.name)
                       if not e.is_recursive()
                       and clone.node(e.dst).partition is not None
                       and clone.node(e.dst).partition
                       != node.dest_partition]
            by_chip: Dict[int, List] = {}
            for edge in foreign:
                by_chip.setdefault(clone.node(edge.dst).partition,
                                   []).append(edge)
            for chip, edges in sorted(by_chip.items()):
                counter += 1
                sibling = Node(
                    name=f"{node.name}@p{chip}", kind=OpKind.IO,
                    op_type="io", bit_width=node.bit_width,
                    value=node.value or node.name,
                    source_partition=OUTSIDE_WORLD,
                    dest_partition=chip, guard=node.guard)
                clone.add_node(sibling)
                for edge in list(clone.in_edges(node.name)):
                    clone.add_edge(edge.src, sibling.name, edge.degree)
                for edge in edges:
                    clone.add_edge(sibling.name, edge.dst, edge.degree)
                    _remove_edge(clone, edge)
        insert_io_nodes(clone)
        return clone


def _movable(graph: Cdfg) -> List[Node]:
    return [n for n in graph.nodes()
            if n.kind in (OpKind.FUNCTIONAL, OpKind.INPUT,
                          OpKind.OUTPUT)]


def _cut_bits(graph: Cdfg, assignment: Mapping[str, int],
              weights: Mapping[int, float]) -> float:
    """Weighted predictor of pin cost: bits crossing each chip border.

    A producer's value crossing to ``k`` distinct chips costs its width
    once per destination chip (each needs an input port) plus once at
    the source — matching how the connection synthesizer pays pins.
    """
    total = 0.0
    for node in _movable(graph):
        src_chip = assignment[node.name]
        dest_chips = set()
        for edge in graph.out_edges(node.name):
            dst = edge.dst
            if dst in assignment and assignment[dst] != src_chip:
                dest_chips.add(assignment[dst])
        if dest_chips:
            total += node.bit_width * weights.get(src_chip, 1.0)
            for chip in dest_chips:
                total += node.bit_width * weights.get(chip, 1.0)
    return total


def partition_cdfg(graph: Cdfg,
                   n_chips: int,
                   balance_slack: float = 0.30,
                   weights: Optional[Mapping[int, float]] = None,
                   seed: int = 0,
                   passes: int = 8) -> PartitionResult:
    """FM-flavoured min-cut partitioning of a flat CDFG.

    Nodes start round-robin (topological order, so neighbours tend to
    co-locate); each pass greedily moves the node with the best cut
    gain whose move keeps every chip within ``balance_slack`` of the
    average load, until no improving move remains.
    """
    if n_chips < 2:
        raise PartitionError("partitioning needs at least 2 chips")
    movable = _movable(graph)
    if len(movable) < n_chips:
        raise PartitionError("fewer operations than chips")
    weights = dict(weights or {})
    rng = random.Random(seed)

    from repro.cdfg.analysis import topological_order
    order = [n for n in topological_order(graph)
             if graph.node(n).kind in (OpKind.FUNCTIONAL, OpKind.INPUT,
                                       OpKind.OUTPUT)]
    chunk = max(1, len(order) // n_chips)
    assignment: Dict[str, int] = {}
    for position, name in enumerate(order):
        assignment[name] = min(n_chips, position // chunk + 1)

    avg = len(order) / n_chips
    low = max(1, int(avg * (1 - balance_slack)))
    high = int(avg * (1 + balance_slack)) + 1

    def loads() -> Dict[int, int]:
        out = {chip: 0 for chip in range(1, n_chips + 1)}
        for chip in assignment.values():
            out[chip] += 1
        return out

    current = _cut_bits(graph, assignment, weights)
    for _ in range(passes):
        improved = False
        names = list(order)
        rng.shuffle(names)
        for name in names:
            here = assignment[name]
            chip_loads = loads()
            best_gain = 0.0
            best_chip = None
            for chip in range(1, n_chips + 1):
                if chip == here:
                    continue
                if chip_loads[chip] + 1 > high:
                    continue
                if chip_loads[here] - 1 < low:
                    continue
                assignment[name] = chip
                candidate = _cut_bits(graph, assignment, weights)
                gain = current - candidate
                if gain > best_gain:
                    best_gain = gain
                    best_chip = chip
                assignment[name] = here
            if best_chip is not None:
                assignment[name] = best_chip
                current -= best_gain
                improved = True
        if not improved:
            break
    return PartitionResult(assignment=assignment,
                           cut_bits=int(current),
                           loads=loads())


def partition_variants(graph: Cdfg,
                       n_chips: int,
                       seeds: Iterable[int],
                       balance_slack: float = 0.30,
                       weights: Optional[Mapping[int, float]] = None,
                       passes: int = 8) -> Dict[int, PartitionResult]:
    """Distinct partitionings across seeds, deduplicated by assignment.

    Different seeds often converge on the same local optimum; sweeping
    them naively wastes synthesis runs on identical inputs.  Returns
    ``{seed: plan}`` keeping only the first seed that produced each
    distinct assignment — the explorer's ``auto_partition`` axis can be
    built from the surviving seeds.
    """
    seen = set()
    variants: Dict[int, PartitionResult] = {}
    for seed in seeds:
        plan = partition_cdfg(graph, n_chips,
                              balance_slack=balance_slack,
                              weights=weights, seed=seed,
                              passes=passes)
        fingerprint = tuple(sorted(plan.assignment.items()))
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        variants[seed] = plan
    return variants


def partition_and_synthesize(graph: Cdfg,
                             partitioning: Partitioning,
                             timing,
                             initiation_rate: int,
                             max_rounds: int = 4,
                             seed: int = 0,
                             **flow_kwargs):
    """The Section 8.2 feedback loop around the Chapter 4 flow.

    Partition, synthesize; on pin overflow or connection failure, the
    offending chips' weights rise (the predictor starts avoiding cuts
    that touch them) and partitioning reruns.  Returns
    ``(SynthesisResult, PartitionResult)``.
    """
    from repro.core.flow import synthesize_connection_first

    n_chips = len(partitioning.real_chips())
    weights: Dict[int, float] = {}
    last_error: Optional[Exception] = None
    for round_index in range(max_rounds):
        plan = partition_cdfg(graph, n_chips, weights=weights,
                              seed=seed + round_index)
        partitioned = plan.apply(graph)
        try:
            result = synthesize_connection_first(
                partitioned, partitioning, timing, initiation_rate,
                **flow_kwargs)
            return result, plan
        except ReproError as exc:
            last_error = exc
            # Feedback: blame the chips nearest their budgets.
            usage = _estimated_usage(partitioned, partitioning)
            for chip, fraction in usage.items():
                if fraction > 0.7:
                    weights[chip] = weights.get(chip, 1.0) * 2.0
    assert last_error is not None
    raise last_error


def _estimated_usage(graph: Cdfg,
                     partitioning: Partitioning) -> Dict[int, float]:
    """Cut-bit pressure per chip relative to its pin budget."""
    pressure: Dict[int, float] = {}
    for node in graph.io_nodes():
        for chip in (node.source_partition, node.dest_partition):
            if chip == OUTSIDE_WORLD:
                continue
            pressure[chip] = pressure.get(chip, 0.0) + node.bit_width
    return {chip: bits / max(1, partitioning.total_pins(chip))
            for chip, bits in pressure.items()}
