"""Chip and partitioning descriptions.

Each partition (chip) has a budget of I/O pins usable for data transfers
(power/control pins are excluded throughout, Section 3.1.1).  Pins may be
pre-split into input and output pins, or left as a single pool that the
synthesizer divides (the ``o_j`` variables of the ILP formulations), or
declared *bidirectional* (Section 4.3) so one physical pin serves both
directions across control steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import PartitionError

#: Index of the pseudo partition modelling the outside world
#: (Section 3.1.1): its "output pins" are the system's input pins and
#: vice versa.
OUTSIDE_WORLD = 0


@dataclass(frozen=True)
class ChipSpec:
    """Pin budget of one chip.

    ``total_pins`` counts only data-transfer pins.  If ``input_pins`` /
    ``output_pins`` are given they must sum to ``total_pins`` and fix the
    split; otherwise the synthesizer chooses the split.  With
    ``bidirectional=True`` the split is irrelevant: every pin can drive
    or sample in any given cycle.
    """

    total_pins: int
    input_pins: Optional[int] = None
    output_pins: Optional[int] = None
    bidirectional: bool = False

    def __post_init__(self) -> None:
        if self.total_pins < 0:
            raise PartitionError("total_pins must be >= 0")
        fixed = (self.input_pins is not None, self.output_pins is not None)
        if any(fixed) and not all(fixed):
            raise PartitionError(
                "input_pins and output_pins must be given together")
        if all(fixed):
            if self.bidirectional:
                raise PartitionError(
                    "a bidirectional chip has no fixed input/output split")
            if self.input_pins + self.output_pins != self.total_pins:
                raise PartitionError(
                    f"input_pins + output_pins = "
                    f"{self.input_pins + self.output_pins} "
                    f"!= total_pins = {self.total_pins}")

    @property
    def split_fixed(self) -> bool:
        return self.input_pins is not None


class Partitioning:
    """A set of chips plus the outside-world pseudo chip.

    The pseudo partition's pin budget is the *system's* pin budget: what
    the outside world can drive into / sample out of the design.
    """

    def __init__(self, chips: Mapping[int, ChipSpec]) -> None:
        if OUTSIDE_WORLD not in chips:
            raise PartitionError(
                f"partitioning must include the outside-world pseudo "
                f"partition {OUTSIDE_WORLD}")
        for index in chips:
            if index < 0:
                raise PartitionError(f"negative partition index {index}")
        self._chips: Dict[int, ChipSpec] = dict(chips)

    # ------------------------------------------------------------------
    def chip(self, index: int) -> ChipSpec:
        try:
            return self._chips[index]
        except KeyError:
            raise PartitionError(f"unknown partition {index}") from None

    def indices(self) -> List[int]:
        return sorted(self._chips)

    def real_chips(self) -> List[int]:
        return [i for i in sorted(self._chips) if i != OUTSIDE_WORLD]

    def __len__(self) -> int:
        return len(self._chips)

    def __contains__(self, index: int) -> bool:
        return index in self._chips

    def total_pins(self, index: int) -> int:
        return self.chip(index).total_pins

    def any_bidirectional(self) -> bool:
        return any(spec.bidirectional for spec in self._chips.values())

    def all_bidirectional(self) -> bool:
        return all(spec.bidirectional for spec in self._chips.values())

    def with_pins(self, pins: Mapping[int, int]) -> "Partitioning":
        """Copy with some chips' total pin budgets replaced."""
        chips = dict(self._chips)
        for index, total in pins.items():
            old = self.chip(index)
            chips[index] = ChipSpec(
                total_pins=total,
                bidirectional=old.bidirectional,
            )
        return Partitioning(chips)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"P{i}={spec.total_pins}{'b' if spec.bidirectional else ''}"
            for i, spec in sorted(self._chips.items()))
        return f"Partitioning({parts})"


def uniform_partitioning(n_chips: int, pins: int, world_pins: int,
                         bidirectional: bool = False) -> Partitioning:
    """Convenience: ``n_chips`` identical chips plus the pseudo chip."""
    chips = {OUTSIDE_WORLD: ChipSpec(world_pins,
                                     bidirectional=bidirectional)}
    for index in range(1, n_chips + 1):
        chips[index] = ChipSpec(pins, bidirectional=bidirectional)
    return Partitioning(chips)
