"""Timing analyses over CDFGs: topological order, ASAP/ALAP, time frames.

The dissertation's designs mix chained sub-cycle operations (AR filter:
30 ns adders and 210 ns multipliers chained within a 250 ns stage) with
multi-cycle operations (elliptic filter: 2-cycle non-pipelined
multipliers).  The analyses here therefore work at nanosecond precision
and report control-step results; a :class:`TimingSpec` supplies the node
timing model.

Data-recursive edges never participate in precedence (ASAP/ALAP); they
impose the *maximum* time constraint of Section 7.1,
``t_b - t_a < d*L - (c_b - 1)``, which :func:`compute_time_frames`
applies as an iterative tightening over the frames.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Protocol, Tuple

from repro.cdfg.graph import Cdfg, Node
from repro.errors import CdfgError, SchedulingError

_EPS = 1e-9


class TimingSpec(Protocol):
    """Node timing model consumed by the analyses and the schedulers."""

    clock_period: float

    def delay_ns(self, node: Node) -> float:
        """Propagation delay of the node in nanoseconds."""

    def cycles(self, node: Node) -> int:
        """Number of whole control steps the node occupies (>= 1)."""

    def must_start_at_boundary(self, node: Node) -> bool:
        """Whether the node must begin exactly at a clock edge."""

    def chaining_allowed(self) -> bool:
        """Whether sub-cycle operations may chain within one step."""


@dataclass
class UnitTiming:
    """Simplest timing: every node takes exactly one control step.

    Useful for tests and for step-granular designs like the elliptic
    filter where only the multiplier is multi-cycle (pass
    ``cycles_by_op_type={"mul": 2}``).
    """

    clock_period: float = 1.0
    cycles_by_op_type: Optional[Dict[str, int]] = None

    def delay_ns(self, node: Node) -> float:
        return self.cycles(node) * self.clock_period

    def cycles(self, node: Node) -> int:
        if node.is_free():
            return 0
        table = self.cycles_by_op_type or {}
        return max(1, int(table.get(node.op_type, 1)))

    def must_start_at_boundary(self, node: Node) -> bool:
        return True

    def chaining_allowed(self) -> bool:
        return False


def topological_order(graph: Cdfg) -> List[str]:
    """Topological order ignoring data-recursive edges.

    Raises :class:`CdfgError` if the degree-0 subgraph contains a cycle
    (forbidden by the Section 2.2 assumptions).
    """
    indeg: Dict[str, int] = {name: 0 for name in graph.node_names()}
    for edge in graph.edges():
        if not edge.is_recursive():
            indeg[edge.dst] += 1
    ready = sorted(name for name, d in indeg.items() if d == 0)
    order: List[str] = []
    # Use a simple stack with deterministic tie-breaking (sorted seeds,
    # insertion order afterwards) so analyses are reproducible.
    queue = list(ready)
    while queue:
        name = queue.pop(0)
        order.append(name)
        for succ in graph.successors(name):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                queue.append(succ)
    if len(order) != len(indeg):
        stuck = sorted(set(indeg) - set(order))
        raise CdfgError(f"cycle through non-recursive edges near {stuck[:5]}")
    return order


def _boundary_up(t: float, period: float) -> float:
    """Smallest multiple of ``period`` that is >= ``t`` (with tolerance)."""
    steps = math.ceil(t / period - _EPS)
    return max(0, steps) * period


def _step_of(start_ns: float, period: float) -> int:
    return int(math.floor(start_ns / period + _EPS))


def asap_schedule(graph: Cdfg, timing: TimingSpec) -> Dict[str, int]:
    """Earliest control step of every node under chaining rules.

    Chained nodes must complete within the step they start in (values
    latch only at clock boundaries, Section 7.4), so a node whose delay
    does not fit before the next edge is pushed to the next step.
    """
    period = timing.clock_period
    start_ns: Dict[str, float] = {}
    finish_ns: Dict[str, float] = {}
    for name in topological_order(graph):
        node = graph.node(name)
        earliest = 0.0
        for edge in graph.in_edges(name):
            if edge.is_recursive():
                continue
            earliest = max(earliest, finish_ns[edge.src])
        start = _place_start(node, earliest, timing)
        start_ns[name] = start
        finish_ns[name] = start + timing.delay_ns(node)
    return {name: _step_of(t, period) for name, t in start_ns.items()}


def _place_start(node: Node, earliest: float, timing: TimingSpec) -> float:
    """Earliest legal start time >= ``earliest`` for the node."""
    period = timing.clock_period
    if node.is_free():
        return earliest
    if timing.must_start_at_boundary(node) or not timing.chaining_allowed():
        return _boundary_up(earliest, period)
    delay = timing.delay_ns(node)
    if delay > period + _EPS:
        # Multi-cycle operations always start at a boundary (Section 7.4).
        return _boundary_up(earliest, period)
    # Chained: must fit before the next clock edge.
    next_edge = _boundary_up(earliest, period)
    if next_edge - earliest < _EPS:
        # Exactly on a boundary already.
        return earliest
    if earliest + delay <= next_edge + _EPS:
        return earliest
    return next_edge


def asap_finish_ns(graph: Cdfg, timing: TimingSpec) -> Dict[str, float]:
    """Earliest finish time (ns) of every node; used for pipe length."""
    finish: Dict[str, float] = {}
    for name in topological_order(graph):
        node = graph.node(name)
        earliest = 0.0
        for edge in graph.in_edges(name):
            if edge.is_recursive():
                continue
            earliest = max(earliest, finish[edge.src])
        start = _place_start(node, earliest, timing)
        finish[name] = start + timing.delay_ns(node)
    return finish


def critical_path_length(graph: Cdfg, timing: TimingSpec) -> int:
    """Minimum pipe length (in control steps) ignoring resources."""
    finish = asap_finish_ns(graph, timing)
    if not finish:
        return 0
    latest = max(finish.values())
    return max(1, int(math.ceil(latest / timing.clock_period - _EPS)))


def alap_schedule(graph: Cdfg, timing: TimingSpec,
                  pipe_length: int) -> Dict[str, int]:
    """Latest control step of every node for a given pipe length.

    Raises :class:`SchedulingError` if ``pipe_length`` is shorter than
    the critical path.
    """
    period = timing.clock_period
    deadline = pipe_length * period
    latest_finish: Dict[str, float] = {}
    start_ns: Dict[str, float] = {}
    for name in reversed(topological_order(graph)):
        node = graph.node(name)
        limit = deadline
        for edge in graph.out_edges(name):
            if edge.is_recursive():
                continue
            limit = min(limit, start_ns[edge.dst])
        start = _place_start_latest(node, limit, timing)
        if start < -_EPS:
            raise SchedulingError(
                f"pipe length {pipe_length} shorter than critical path "
                f"(node {name!r} would start at {start:.3f} ns)")
        start_ns[name] = start
        latest_finish[name] = start + timing.delay_ns(node)
    return {name: _step_of(t, period) for name, t in start_ns.items()}


def _place_start_latest(node: Node, latest_finish: float,
                        timing: TimingSpec) -> float:
    """Latest legal start so the node finishes by ``latest_finish``."""
    period = timing.clock_period
    delay = timing.delay_ns(node)
    start = latest_finish - delay
    if node.is_free():
        return start
    if timing.must_start_at_boundary(node) or not timing.chaining_allowed():
        return math.floor(start / period + _EPS) * period
    if delay > period + _EPS:
        return math.floor(start / period + _EPS) * period
    # Chained: must not cross a boundary; if [start, start+delay) crosses
    # one, pull the start back so it finishes exactly at that boundary.
    start_step = math.floor(start / period + _EPS)
    finish_step = math.floor((start + delay) / period - _EPS)
    if finish_step > start_step:
        boundary = finish_step * period
        return boundary - delay if boundary - delay >= start_step * period \
            else start_step * period
    return start


@dataclass
class TimeFrames:
    """Per-node scheduling windows ``[asap, alap]`` in control steps."""

    asap: Dict[str, int]
    alap: Dict[str, int]

    def frame(self, name: str) -> Tuple[int, int]:
        return self.asap[name], self.alap[name]

    def width(self, name: str) -> int:
        return self.alap[name] - self.asap[name] + 1

    def feasible(self) -> bool:
        return all(self.alap[n] >= self.asap[n] for n in self.asap)


def compute_time_frames(graph: Cdfg,
                        timing: TimingSpec,
                        pipe_length: int,
                        initiation_rate: Optional[int] = None,
                        fixed: Optional[Dict[str, int]] = None) -> TimeFrames:
    """ASAP/ALAP frames tightened by recursive-edge max-time constraints.

    ``fixed`` pins some nodes to known steps (used by schedulers to
    propagate partial decisions).  With an ``initiation_rate`` ``L``,
    each recursive edge ``src -> dst`` of degree ``d`` (value produced by
    ``src`` consumed by ``dst`` ``d`` instances later... in the
    dissertation's orientation the edge runs *producer -> consumer*, and
    the constraint binds the producer ``op_b`` relative to the consumer
    ``op_a``) contributes ``t_src <= t_dst + d*L - c_src`` where ``c_src``
    is the producer's cycle count (Section 7.1).
    """
    asap = dict(asap_schedule(graph, timing))
    alap = dict(alap_schedule(graph, timing, pipe_length))
    if fixed:
        for name, step in fixed.items():
            asap[name] = max(asap[name], step)
            alap[name] = min(alap[name], step)
    frames = TimeFrames(asap, alap)
    if initiation_rate is None:
        _propagate_precedence(graph, timing, frames)
        return frames

    # Iterate precedence + recursive tightening to a fixpoint.  Each
    # pass can only shrink frames; once any frame empties the design is
    # infeasible at this rate and we stop (callers inspect
    # ``frames.feasible()``).
    changed = True
    guard = 0
    while changed:
        guard += 1
        if not frames.feasible():
            return frames
        if guard > 10 * (len(asap) + 1):
            raise SchedulingError("time-frame tightening did not converge")
        changed = _propagate_precedence(graph, timing, frames)
        for edge in graph.recursive_edges():
            producer, consumer, d = edge.src, edge.dst, edge.degree
            c_src = max(1, timing.cycles(graph.node(producer)))
            # t_producer <= t_consumer + d*L - c_src
            bound = frames.alap[consumer] + d * initiation_rate - c_src
            if frames.alap[producer] > bound:
                frames.alap[producer] = bound
                changed = True
            # t_consumer >= t_producer - d*L + c_src
            low = frames.asap[producer] - d * initiation_rate + c_src
            if frames.asap[consumer] < low:
                frames.asap[consumer] = low
                changed = True
    return frames


def _propagate_precedence(graph: Cdfg, timing: TimingSpec,
                          frames: TimeFrames) -> bool:
    """One forward+backward pass of step-granular precedence tightening.

    This is conservative (step-level, chaining treated as same-step
    allowance) — exact ns feasibility stays with the scheduler.
    Returns whether anything changed.
    """
    changed = False
    chain = timing.chaining_allowed()
    order = topological_order(graph)
    for name in order:
        node = graph.node(name)
        for edge in graph.in_edges(name):
            if edge.is_recursive():
                continue
            pred = graph.node(edge.src)
            gap = _min_step_gap(pred, node, timing, chain)
            low = frames.asap[edge.src] + gap
            if frames.asap[name] < low:
                frames.asap[name] = low
                changed = True
    for name in reversed(order):
        node = graph.node(name)
        for edge in graph.out_edges(name):
            if edge.is_recursive():
                continue
            succ = graph.node(edge.dst)
            gap = _min_step_gap(node, succ, timing, chain)
            high = frames.alap[edge.dst] - gap
            if frames.alap[name] > high:
                frames.alap[name] = high
                changed = True
    return changed


def _min_step_gap(pred: Node, succ: Node, timing: TimingSpec,
                  chain: bool) -> int:
    """Minimum step distance from pred's start to succ's start."""
    if pred.is_free():
        return 0
    cycles = max(1, timing.cycles(pred))
    if chain and cycles == 1 and not timing.must_start_at_boundary(succ):
        # Chaining may let the successor start in the same step; the
        # ns-level check belongs to the scheduler.
        return 0
    return cycles
