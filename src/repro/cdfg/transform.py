"""CDFG transformations.

* :func:`insert_time_division_multiplexing` — Section 7.3 / Figure 7.8:
  replace one wide I/O operation by a SPLIT node, several narrower I/O
  operations, and a MERGE node, so the transfer can be spread over
  several cycles on fewer pins.
* :func:`unroll_fixed_loop` — Section 2.2 requires a flat CDFG; loops
  with a fixed iteration count are unwound before synthesis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cdfg.graph import Cdfg, Node
from repro.cdfg.ops import OpKind
from repro.errors import CdfgError


def insert_time_division_multiplexing(graph: Cdfg,
                                      io_name: str,
                                      widths: Sequence[int]) -> List[str]:
    """Split I/O operation ``io_name`` into ``len(widths)`` transfers.

    Returns the names of the new I/O nodes.  A single SPLIT node feeds
    all sub-transfers (only one split is needed even for multi-fanout
    values, Section 7.3) and a MERGE node on the destination partition
    reassembles the value for the original consumers.

    The decision of *which* operations to split and into how many
    components is the designer's (the dissertation leaves automating the
    trade-off as future work); this transform just applies it.
    """
    node = graph.node(io_name)
    if node.kind is not OpKind.IO:
        raise CdfgError(f"{io_name!r} is not an I/O operation")
    if sum(widths) != node.bit_width:
        raise CdfgError(
            f"split widths {list(widths)} do not sum to the value width "
            f"{node.bit_width}")
    if any(w <= 0 for w in widths):
        raise CdfgError("split widths must be positive")
    if len(widths) < 2:
        raise CdfgError("time-division multiplexing needs >= 2 components")

    producers = [e.src for e in graph.in_edges(io_name)
                 if not e.is_recursive()]
    consumers = [e.dst for e in graph.out_edges(io_name)
                 if not e.is_recursive()]

    split_name = f"{io_name}.split"
    merge_name = f"{io_name}.merge"
    graph.add_node(Node(
        name=split_name, kind=OpKind.SPLIT, op_type="split",
        partition=node.source_partition, bit_width=node.bit_width))
    graph.add_node(Node(
        name=merge_name, kind=OpKind.MERGE, op_type="merge",
        partition=node.dest_partition, bit_width=node.bit_width))

    new_ios: List[str] = []
    for idx, width in enumerate(widths):
        sub = Node(
            name=f"{io_name}.{idx}",
            kind=OpKind.IO,
            op_type="io",
            bit_width=width,
            value=f"{node.value}.{idx}",
            source_partition=node.source_partition,
            dest_partition=node.dest_partition,
            guard=node.guard,
        )
        graph.add_node(sub)
        graph.add_edge(split_name, sub.name)
        graph.add_edge(sub.name, merge_name)
        new_ios.append(sub.name)

    for producer in producers:
        graph.add_edge(producer, split_name)
    for consumer in consumers:
        graph.add_edge(merge_name, consumer)

    _remove_node(graph, io_name)
    return new_ios


def unroll_fixed_loop(body: Cdfg,
                      iterations: int,
                      carried: Optional[Dict[str, str]] = None,
                      name: Optional[str] = None) -> Cdfg:
    """Unroll a loop body ``iterations`` times into one flat CDFG.

    ``carried`` maps a producer node in iteration ``i`` to the consumer
    node it feeds in iteration ``i + 1`` (loop-carried dependence).
    Node names gain an ``@k`` iteration suffix.
    """
    if iterations < 1:
        raise CdfgError("iterations must be >= 1")
    carried = carried or {}
    for producer, consumer in carried.items():
        if producer not in body:
            raise CdfgError(f"carried producer {producer!r} not in body")
        if consumer not in body:
            raise CdfgError(f"carried consumer {consumer!r} not in body")

    flat = Cdfg(name or f"{body.name}_x{iterations}")
    for k in range(iterations):
        for node in body.nodes():
            renamed = Node(
                name=f"{node.name}@{k}",
                kind=node.kind,
                op_type=node.op_type,
                partition=node.partition,
                bit_width=node.bit_width,
                value=f"{node.value}@{k}" if node.value else "",
                source_partition=node.source_partition,
                dest_partition=node.dest_partition,
                guard=node.guard,
            )
            flat.add_node(renamed)
        for edge in body.edges():
            flat.add_edge(f"{edge.src}@{k}", f"{edge.dst}@{k}", edge.degree)
    for k in range(iterations - 1):
        for producer, consumer in carried.items():
            flat.add_edge(f"{producer}@{k}", f"{consumer}@{k + 1}")
    return flat


def _remove_edge(graph: Cdfg, edge) -> None:
    """Remove one edge instance from the graph (internal helper)."""
    graph._edges.remove(edge)
    graph._succs[edge.src].remove(edge)
    graph._preds[edge.dst].remove(edge)
    graph._values_cache = None


def _remove_node(graph: Cdfg, name: str) -> None:
    """Remove a node and all incident edges (internal helper)."""
    # Cdfg keeps private dicts; this module is part of the package and
    # may touch them — external callers should treat graphs as append-only.
    graph._edges = [e for e in graph._edges
                    if e.src != name and e.dst != name]
    for key in list(graph._succs):
        graph._succs[key] = [e for e in graph._succs[key] if e.dst != name]
    for key in list(graph._preds):
        graph._preds[key] = [e for e in graph._preds[key] if e.src != name]
    del graph._nodes[name]
    del graph._succs[name]
    del graph._preds[name]
    graph._values_cache = None
