"""Operation kinds used in CDFG nodes.

The dissertation distinguishes *functional* operations (implemented by
hardware modules inside a chip) from *I/O* operations (interchip
transfers that consume pins and communication-bus slots), plus the
structural split/merge nodes used for time-division I/O multiplexing
(Section 7.3).
"""

from __future__ import annotations

import enum


class OpKind(enum.Enum):
    """Kind of a CDFG node."""

    # Functional operations (extensible: the module library maps the
    # ``op_type`` string on the node, these enum members only classify).
    FUNCTIONAL = "functional"

    # External-world operations.  In the multi-chip model these become
    # I/O operations to/from the pseudo partition P0 (Section 3.1.1).
    INPUT = "input"
    OUTPUT = "output"

    # An interchip transfer node: one output operation of the source
    # partition paired with one input operation of the destination
    # partition, always in the same control step (Section 2.2.1).
    IO = "io"

    # Constant source; consumes no resources and is always "ready".
    CONSTANT = "constant"

    # Time-division multiplexing helpers (Section 7.3): SPLIT divides a
    # wide value into narrower sub-values; MERGE reassembles them.
    SPLIT = "split"
    MERGE = "merge"


#: Kinds that occupy a functional unit when scheduled.
FUNCTIONAL_KINDS = frozenset({OpKind.FUNCTIONAL})

#: Kinds that occupy I/O pins / communication-bus slots when scheduled.
IO_KINDS = frozenset({OpKind.IO, OpKind.INPUT, OpKind.OUTPUT})

#: Kinds that take no hardware at all (wiring / constants).
FREE_KINDS = frozenset({OpKind.CONSTANT, OpKind.SPLIT, OpKind.MERGE})
