"""CDFG data structures: nodes, edges and the graph itself.

Design notes
------------
* Node identity is a user-chosen string (``"+1"``, ``"X3"``, ``"Ia"`` ...)
  mirroring the labels used throughout the dissertation's figures.
* Edges carry a ``degree``; ``degree == 0`` is intra-instance dependence,
  ``degree == d > 0`` is a data-recursive edge: the consumer uses the value
  produced ``d`` execution instances earlier (Section 7.1).  Recursive
  edges do not constrain topological order — only the pipelined maximum
  time constraint ``t_dst_producer - t_src_consumer < d*L - (c-1)``.
* I/O operation nodes (kind ``IO``) record the source and destination
  partitions and the transferred value's name and bit width; several I/O
  nodes may transfer the *same* value to different partitions
  (Section 2.2.1) — they share the value name.
* Conditional execution is modelled with *guards*: a guard is a mapping
  from branch-variable name to the branch taken (``True``/``False``);
  two operations are mutually exclusive iff their guards disagree on some
  branch variable (the condition-vector technique cited in Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.cdfg.ops import OpKind, FREE_KINDS
from repro.errors import CdfgError

#: A guard assigns outcomes to branch variables, e.g. ``{"c1": True}``.
Guard = Mapping[str, bool]


def _freeze_guard(guard: Optional[Guard]) -> FrozenSet[Tuple[str, bool]]:
    if not guard:
        return frozenset()
    return frozenset((str(k), bool(v)) for k, v in guard.items())


def guards_mutually_exclusive(a: FrozenSet[Tuple[str, bool]],
                              b: FrozenSet[Tuple[str, bool]]) -> bool:
    """True iff two frozen guards disagree on at least one branch variable."""
    vars_a = dict(a)
    for var, taken in b:
        if var in vars_a and vars_a[var] != taken:
            return True
    return False


@dataclass(frozen=True)
class Node:
    """A CDFG operation node.

    Attributes
    ----------
    name:
        Unique identifier within the graph.
    kind:
        Classification of the node (functional, io, input, ...).
    op_type:
        For functional nodes, the operation type resolved against the
        module library (``"add"``, ``"mul"``, ...).  For I/O nodes the
        conventional value is ``"io"``.
    partition:
        Partition (chip) index the node belongs to.  For I/O nodes this
        is ``None`` — they live *between* partitions.
    bit_width:
        Width of the produced/transferred value in bits.
    value:
        Name of the transferred value for I/O nodes.  I/O nodes
        transferring the same value to different partitions share this
        name (set ``W_v`` in the formulations).
    source_partition / dest_partition:
        For I/O nodes, producer and consumer chips.  The pseudo
        partition 0 models the outside world (Section 3.1.1).
    guard:
        Frozen condition assignment for conditional operations.
    """

    name: str
    kind: OpKind
    op_type: str = ""
    partition: Optional[int] = None
    bit_width: int = 8
    value: str = ""
    source_partition: Optional[int] = None
    dest_partition: Optional[int] = None
    guard: FrozenSet[Tuple[str, bool]] = frozenset()

    def is_io(self) -> bool:
        return self.kind is OpKind.IO

    def is_functional(self) -> bool:
        return self.kind is OpKind.FUNCTIONAL

    def is_free(self) -> bool:
        """Nodes that consume neither functional units nor pins."""
        return self.kind in FREE_KINDS

    def mutually_exclusive_with(self, other: "Node") -> bool:
        """Whether the two operations can never execute in one instance."""
        return guards_mutually_exclusive(self.guard, other.guard)


@dataclass(frozen=True)
class Edge:
    """A dependence edge ``src -> dst`` with a recursion degree."""

    src: str
    dst: str
    degree: int = 0

    def is_recursive(self) -> bool:
        return self.degree > 0


class Cdfg:
    """A flat control/data-flow graph (Section 2.2 assumptions).

    The graph must be acyclic when data-recursive edges are ignored;
    :func:`repro.cdfg.validate.validate_cdfg` enforces this and the other
    model assumptions.
    """

    def __init__(self, name: str = "cdfg") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._edges: List[Edge] = []
        self._succs: Dict[str, List[Edge]] = {}
        self._preds: Dict[str, List[Edge]] = {}
        self._values_cache: Optional[Dict[str, List[Node]]] = None
        self._recursive_cache: Optional[List[Edge]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise CdfgError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._succs[node.name] = []
        self._preds[node.name] = []
        self._values_cache = None
        return node

    def add_edge(self, src: str, dst: str, degree: int = 0) -> Edge:
        if src not in self._nodes:
            raise CdfgError(f"edge source {src!r} is not a node")
        if dst not in self._nodes:
            raise CdfgError(f"edge destination {dst!r} is not a node")
        if degree < 0:
            raise CdfgError(f"edge degree must be >= 0, got {degree}")
        edge = Edge(src, dst, degree)
        self._edges.append(edge)
        self._succs[src].append(edge)
        self._preds[dst].append(edge)
        self._recursive_cache = None
        return edge

    def replace_node(self, node: Node) -> None:
        """Replace a node's attributes in place, keeping its edges."""
        if node.name not in self._nodes:
            raise CdfgError(f"cannot replace unknown node {node.name!r}")
        self._nodes[node.name] = node
        self._values_cache = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise CdfgError(f"unknown node {name!r}") from None

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node_names(self) -> Iterator[str]:
        return iter(self._nodes.keys())

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def out_edges(self, name: str) -> List[Edge]:
        return list(self._succs[name])

    def in_edges(self, name: str) -> List[Edge]:
        return list(self._preds[name])

    def successors(self, name: str, include_recursive: bool = False) -> List[str]:
        return [e.dst for e in self._succs[name]
                if include_recursive or not e.is_recursive()]

    def predecessors(self, name: str, include_recursive: bool = False) -> List[str]:
        return [e.src for e in self._preds[name]
                if include_recursive or not e.is_recursive()]

    def functional_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.is_functional()]

    def io_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.is_io()]

    def recursive_edges(self) -> List[Edge]:
        """The data-recursive subset of the edges.

        Cached: the scheduler's recursion-deadline checks consult this
        per placement attempt, and the subset is tiny next to the full
        edge list it would otherwise rescan.  ``add_edge`` invalidates.
        """
        if self._recursive_cache is None:
            self._recursive_cache = [e for e in self._edges
                                     if e.is_recursive()]
        return list(self._recursive_cache)

    def values_map(self) -> Dict[str, List[Node]]:
        """Group I/O nodes by transferred value name (the sets ``W_v``).

        Cached: schedulers consult this per placement attempt.  Any
        node addition or replacement invalidates the cache (the
        low-level transform helpers invalidate explicitly).
        """
        if self._values_cache is None:
            groups: Dict[str, List[Node]] = {}
            for node in self.io_nodes():
                groups.setdefault(node.value or node.name,
                                  []).append(node)
            self._values_cache = groups
        return self._values_cache

    def partitions(self) -> List[int]:
        """Sorted list of partition indices referenced by any node."""
        seen = set()
        for node in self._nodes.values():
            if node.partition is not None:
                seen.add(node.partition)
            if node.source_partition is not None:
                seen.add(node.source_partition)
            if node.dest_partition is not None:
                seen.add(node.dest_partition)
        return sorted(seen)

    def op_type_counts(self) -> Dict[str, int]:
        """Histogram of functional ``op_type`` values (for reporting)."""
        counts: Dict[str, int] = {}
        for node in self.functional_nodes():
            counts[node.op_type] = counts.get(node.op_type, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # convenience copies
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Cdfg":
        clone = Cdfg(name or self.name)
        for node in self._nodes.values():
            clone.add_node(node)
        for edge in self._edges:
            clone.add_edge(edge.src, edge.dst, edge.degree)
        return clone

    def subgraph(self, names: Iterable[str], name: str = "sub") -> "Cdfg":
        keep = set(names)
        clone = Cdfg(name)
        for node_name in keep:
            clone.add_node(self.node(node_name))
        for edge in self._edges:
            if edge.src in keep and edge.dst in keep:
                clone.add_edge(edge.src, edge.dst, edge.degree)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Cdfg({self.name!r}, nodes={len(self._nodes)}, "
                f"edges={len(self._edges)})")


def make_io_node(name: str,
                 value: str,
                 source_partition: int,
                 dest_partition: int,
                 bit_width: int = 8,
                 guard: Optional[Guard] = None) -> Node:
    """Convenience constructor for an interchip I/O operation node."""
    return Node(
        name=name,
        kind=OpKind.IO,
        op_type="io",
        bit_width=bit_width,
        value=value,
        source_partition=source_partition,
        dest_partition=dest_partition,
        guard=_freeze_guard(guard),
    )


def make_functional_node(name: str,
                         op_type: str,
                         partition: int,
                         bit_width: int = 8,
                         guard: Optional[Guard] = None) -> Node:
    """Convenience constructor for a functional operation node."""
    return Node(
        name=name,
        kind=OpKind.FUNCTIONAL,
        op_type=op_type,
        partition=partition,
        bit_width=bit_width,
        guard=_freeze_guard(guard),
    )
