"""Control/Data-Flow Graph (CDFG) representation and analyses.

The CDFG is the input to every synthesis flow in this library (see
Chapter 2 of the dissertation).  Nodes are operations — functional
operations such as additions and multiplications, external inputs and
outputs, and *I/O operation nodes* that model an interchip transfer as a
single node pairing an output operation of one partition with an input
operation of another.  Edges carry a *degree*: degree 0 is ordinary
intra-instance data dependence, degree ``d > 0`` is a data-recursive edge
whose value is produced ``d`` execution instances earlier (Section 7.1).
"""

from repro.cdfg.ops import (
    OpKind,
    FUNCTIONAL_KINDS,
    IO_KINDS,
)
from repro.cdfg.graph import Node, Edge, Cdfg
from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.analysis import (
    topological_order,
    asap_schedule,
    alap_schedule,
    TimeFrames,
    compute_time_frames,
    critical_path_length,
)
from repro.cdfg.validate import validate_cdfg
from repro.cdfg.transform import (
    insert_time_division_multiplexing,
    unroll_fixed_loop,
)

__all__ = [
    "OpKind",
    "FUNCTIONAL_KINDS",
    "IO_KINDS",
    "Node",
    "Edge",
    "Cdfg",
    "CdfgBuilder",
    "topological_order",
    "asap_schedule",
    "alap_schedule",
    "TimeFrames",
    "compute_time_frames",
    "critical_path_length",
    "validate_cdfg",
    "insert_time_division_multiplexing",
    "unroll_fixed_loop",
]
