"""Fluent builder for CDFGs.

The builder keeps graph construction readable in the benchmark designs
and the tests: every call returns the node name so expressions compose::

    b = CdfgBuilder("demo")
    a = b.inp("a", partition=1)
    c = b.op("+1", "add", partition=1, inputs=[a, b.const("k")])
    b.out("o1", c, partition=1)
    g = b.build()
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.cdfg.graph import Cdfg, Node, _freeze_guard, Guard
from repro.cdfg.ops import OpKind


class CdfgBuilder:
    """Incrementally builds a :class:`~repro.cdfg.graph.Cdfg`."""

    def __init__(self, name: str = "cdfg") -> None:
        self._graph = Cdfg(name)
        self._auto = 0

    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self._auto += 1
        return f"{prefix}{self._auto}"

    def _link_inputs(self, name: str, inputs: Optional[Sequence[str]]) -> None:
        for src in inputs or ():
            self._graph.add_edge(src, name)

    # ------------------------------------------------------------------
    def op(self,
           name: str,
           op_type: str,
           partition: int,
           inputs: Optional[Sequence[str]] = None,
           bit_width: int = 8,
           guard: Optional[Guard] = None) -> str:
        """Add a functional operation and wire its inputs."""
        self._graph.add_node(Node(
            name=name,
            kind=OpKind.FUNCTIONAL,
            op_type=op_type,
            partition=partition,
            bit_width=bit_width,
            guard=_freeze_guard(guard),
        ))
        self._link_inputs(name, inputs)
        return name

    def inp(self,
            name: str,
            partition: int,
            bit_width: int = 8,
            guard: Optional[Guard] = None) -> str:
        """Add an external input (a value arriving from the outside)."""
        self._graph.add_node(Node(
            name=name,
            kind=OpKind.INPUT,
            op_type="input",
            partition=partition,
            bit_width=bit_width,
            guard=_freeze_guard(guard),
        ))
        return name

    def out(self,
            name: str,
            source: str,
            partition: int,
            bit_width: int = 8,
            guard: Optional[Guard] = None) -> str:
        """Add an external output fed by ``source``."""
        self._graph.add_node(Node(
            name=name,
            kind=OpKind.OUTPUT,
            op_type="output",
            partition=partition,
            bit_width=bit_width,
            guard=_freeze_guard(guard),
        ))
        self._graph.add_edge(source, name)
        return name

    def const(self, name: Optional[str] = None, bit_width: int = 8,
              partition: Optional[int] = None) -> str:
        """Add a constant source node."""
        node_name = name or self._fresh("k")
        self._graph.add_node(Node(
            name=node_name,
            kind=OpKind.CONSTANT,
            op_type="const",
            partition=partition,
            bit_width=bit_width,
        ))
        return node_name

    def io(self,
           name: str,
           value: str,
           source: str,
           dests: Iterable[str],
           source_partition: int,
           dest_partition: int,
           bit_width: int = 8,
           guard: Optional[Guard] = None) -> str:
        """Add an interchip I/O operation node between partitions.

        ``source`` is the producing node; ``dests`` the consuming nodes in
        the destination partition (the I/O node is spliced between them).
        """
        self._graph.add_node(Node(
            name=name,
            kind=OpKind.IO,
            op_type="io",
            bit_width=bit_width,
            value=value,
            source_partition=source_partition,
            dest_partition=dest_partition,
            guard=_freeze_guard(guard),
        ))
        self._graph.add_edge(source, name)
        for dst in dests:
            self._graph.add_edge(name, dst)
        return name

    def edge(self, src: str, dst: str, degree: int = 0) -> None:
        """Add a dependence edge; ``degree > 0`` makes it data-recursive."""
        self._graph.add_edge(src, dst, degree)

    def recursive(self, src: str, dst: str, degree: int = 1) -> None:
        """Add a data-recursive edge (Section 7.1)."""
        self._graph.add_edge(src, dst, degree)

    # ------------------------------------------------------------------
    def build(self) -> Cdfg:
        """Return the constructed graph (the builder stays usable)."""
        return self._graph
