"""CDFG validation against the Section 2.2 model assumptions.

The checks are deliberately strict: synthesis algorithms downstream rely
on these invariants (flat acyclic graph, I/O nodes between distinct
partitions, consistent bit widths within a value, ...), and a clear
early error beats a confusing mid-schedule failure.
"""

from __future__ import annotations

from typing import List

from repro.cdfg.analysis import topological_order
from repro.cdfg.graph import Cdfg
from repro.cdfg.ops import OpKind
from repro.errors import ValidationError


def validate_cdfg(graph: Cdfg, require_partitions: bool = True) -> None:
    """Raise :class:`ValidationError` describing every violation found."""
    problems: List[str] = []

    # Acyclic over non-recursive edges (also detects dangling names).
    try:
        topological_order(graph)
    except Exception as exc:  # CdfgError carries the cycle info
        problems.append(str(exc))

    for node in graph.nodes():
        if node.kind is OpKind.IO:
            if node.source_partition is None or node.dest_partition is None:
                problems.append(
                    f"I/O node {node.name!r} lacks source/dest partition")
            elif node.source_partition == node.dest_partition:
                problems.append(
                    f"I/O node {node.name!r} connects partition "
                    f"{node.source_partition} to itself")
            if node.bit_width <= 0:
                problems.append(
                    f"I/O node {node.name!r} has bit width {node.bit_width}")
            if not node.value:
                problems.append(f"I/O node {node.name!r} has no value name")
        elif node.kind is OpKind.FUNCTIONAL:
            if require_partitions and node.partition is None:
                problems.append(
                    f"functional node {node.name!r} has no partition")
            if not node.op_type:
                problems.append(
                    f"functional node {node.name!r} has no op_type")
        elif node.kind in (OpKind.INPUT, OpKind.OUTPUT):
            if require_partitions and node.partition is None:
                problems.append(
                    f"{node.kind.value} node {node.name!r} has no partition")

    # I/O nodes transferring the same value must agree on the source
    # partition and the bit width (they are the same physical value).
    for value, nodes in graph.values_map().items():
        sources = {n.source_partition for n in nodes}
        if len(sources) > 1:
            problems.append(
                f"value {value!r} output from several partitions: "
                f"{sorted(sources)}")
        widths = {n.bit_width for n in nodes}
        if len(widths) > 1:
            problems.append(
                f"value {value!r} transferred at inconsistent widths "
                f"{sorted(widths)}")
        dests = [n.dest_partition for n in nodes]
        if len(dests) != len(set(dests)):
            problems.append(
                f"value {value!r} has duplicate I/O nodes to one partition")

    # Edges incident to I/O nodes must respect partition boundaries:
    # producers live in the source partition, consumers in the dest.
    for node in graph.io_nodes():
        for edge in graph.in_edges(node.name):
            if edge.is_recursive():
                continue
            pred = graph.node(edge.src)
            if pred.kind is OpKind.IO:
                problems.append(
                    f"I/O node {node.name!r} fed directly by I/O node "
                    f"{pred.name!r} (values transfer directly, not through "
                    f"other partitions)")
            elif (pred.partition is not None
                  and pred.partition != node.source_partition):
                problems.append(
                    f"I/O node {node.name!r} claims source partition "
                    f"{node.source_partition} but producer {pred.name!r} "
                    f"is in partition {pred.partition}")
        for edge in graph.out_edges(node.name):
            if edge.is_recursive():
                continue
            succ = graph.node(edge.dst)
            if succ.kind is OpKind.IO:
                problems.append(
                    f"I/O node {node.name!r} feeds I/O node {succ.name!r} "
                    f"directly")
            elif (succ.partition is not None
                  and succ.partition != node.dest_partition):
                problems.append(
                    f"I/O node {node.name!r} claims dest partition "
                    f"{node.dest_partition} but consumer {succ.name!r} "
                    f"is in partition {succ.partition}")

    # Non-I/O edges must stay inside one partition: every cross-partition
    # transfer needs an explicit I/O node.
    for edge in graph.edges():
        src = graph.node(edge.src)
        dst = graph.node(edge.dst)
        if src.kind is OpKind.IO or dst.kind is OpKind.IO:
            continue
        if (src.partition is not None and dst.partition is not None
                and src.partition != dst.partition):
            problems.append(
                f"edge {edge.src!r} -> {edge.dst!r} crosses partitions "
                f"{src.partition} -> {dst.partition} without an I/O node")

    if problems:
        raise ValidationError(
            "CDFG validation failed:\n  " + "\n  ".join(problems))
