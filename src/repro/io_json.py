"""JSON (de)serialization of designs and synthesis results.

Lets users author partitioned CDFGs and pin budgets as data files, and
archive synthesis outputs (schedule + interconnect + bus assignment)
for diffing between tool versions.  The format is versioned and
round-trip tested.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.cdfg.graph import Cdfg, Node
from repro.cdfg.ops import OpKind
from repro.core.interconnect import Bus, BusAssignment, Interconnect
from repro.errors import ReproError
from repro.partition.model import ChipSpec, Partitioning
from repro.robustness.diagnostics import Diagnostics

FORMAT_VERSION = 1

#: Version of the machine-readable payload *schemas* (synthesize
#: result archives and ``--json`` output, explore reports, service
#: responses).  Producers stamp it as ``schema_version``; consumers
#: tolerate its absence (payloads written before versioning) and
#: reject versions newer than they understand.
SCHEMA_VERSION = 1


class FormatError(ReproError):
    """Malformed or incompatible JSON input."""


def check_schema_version(data: Dict[str, Any], what: str) -> None:
    """Validate a payload's optional ``schema_version`` stamp.

    Missing means the pre-versioning form of the same schema — always
    accepted.  A newer version than this build understands is refused
    with a clear error instead of a downstream KeyError.
    """
    version = data.get("schema_version")
    if version is None:
        return
    if not isinstance(version, int) or version < 1:
        raise FormatError(
            f"{what} has malformed schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise FormatError(
            f"{what} uses schema_version {version}, newer than the "
            f"supported {SCHEMA_VERSION}; upgrade the tool to read it")


def canonical_dumps(data: Any) -> str:
    """Serialize plain data to a canonical JSON string.

    Keys are sorted and separators fixed, so two structurally equal
    dicts built in different insertion orders (or in different
    processes, under different ``PYTHONHASHSEED``\\ s) produce the same
    bytes.  The explorer's content-addressed result cache hashes this
    form; reports and cache files also write it so diffs are stable.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


# ---------------------------------------------------------------------
def graph_to_dict(graph: Cdfg) -> Dict[str, Any]:
    """Serialize a CDFG (nodes, edges, guards) to plain data."""
    return {
        "version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            {
                "name": n.name,
                "kind": n.kind.value,
                "op_type": n.op_type,
                "partition": n.partition,
                "bit_width": n.bit_width,
                "value": n.value,
                "source_partition": n.source_partition,
                "dest_partition": n.dest_partition,
                "guard": sorted([list(g) for g in n.guard]),
            }
            for n in sorted(graph.nodes(), key=lambda n: n.name)
        ],
        "edges": [
            {"src": e.src, "dst": e.dst, "degree": e.degree}
            for e in graph.edges()
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> Cdfg:
    """Rebuild a CDFG from :func:`graph_to_dict` data."""
    if data.get("version") != FORMAT_VERSION:
        raise FormatError(
            f"unsupported graph format version {data.get('version')!r}")
    graph = Cdfg(data.get("name", "cdfg"))
    for raw in data["nodes"]:
        try:
            kind = OpKind(raw["kind"])
        except ValueError:
            raise FormatError(f"unknown node kind {raw['kind']!r}")
        graph.add_node(Node(
            name=raw["name"],
            kind=kind,
            op_type=raw.get("op_type", ""),
            partition=raw.get("partition"),
            bit_width=raw.get("bit_width", 8),
            value=raw.get("value", ""),
            source_partition=raw.get("source_partition"),
            dest_partition=raw.get("dest_partition"),
            guard=frozenset((str(k), bool(v))
                            for k, v in raw.get("guard", [])),
        ))
    for raw in data["edges"]:
        graph.add_edge(raw["src"], raw["dst"], raw.get("degree", 0))
    return graph


# ---------------------------------------------------------------------
def partitioning_to_dict(partitioning: Partitioning) -> Dict[str, Any]:
    """Serialize chip pin budgets to plain data."""
    return {
        "version": FORMAT_VERSION,
        "chips": {
            str(index): {
                "total_pins": spec.total_pins,
                "input_pins": spec.input_pins,
                "output_pins": spec.output_pins,
                "bidirectional": spec.bidirectional,
            }
            for index, spec in (
                (i, partitioning.chip(i))
                for i in partitioning.indices())
        },
    }


def partitioning_from_dict(data: Dict[str, Any]) -> Partitioning:
    """Rebuild a Partitioning from :func:`partitioning_to_dict` data."""
    if data.get("version") != FORMAT_VERSION:
        raise FormatError(
            f"unsupported partitioning format version "
            f"{data.get('version')!r}")
    chips = {}
    for key, raw in data["chips"].items():
        chips[int(key)] = ChipSpec(
            total_pins=raw["total_pins"],
            input_pins=raw.get("input_pins"),
            output_pins=raw.get("output_pins"),
            bidirectional=raw.get("bidirectional", False),
        )
    return Partitioning(chips)


# ---------------------------------------------------------------------
def interconnect_to_dict(interconnect: Interconnect) -> Dict[str, Any]:
    """Serialize buses (ports, widths, segments) to plain data."""
    return {
        "version": FORMAT_VERSION,
        "bidirectional": interconnect.bidirectional,
        "buses": [
            {
                "index": bus.index,
                "out_widths": {str(k): v
                               for k, v in bus.out_widths.items()},
                "in_widths": {str(k): v
                              for k, v in bus.in_widths.items()},
                "bi_widths": {str(k): v
                              for k, v in bus.bi_widths.items()},
                "segments": list(bus.segments),
            }
            for bus in interconnect.buses
        ],
    }


def interconnect_from_dict(data: Dict[str, Any]) -> Interconnect:
    """Rebuild an Interconnect from :func:`interconnect_to_dict` data."""
    if data.get("version") != FORMAT_VERSION:
        raise FormatError(
            f"unsupported interconnect format version "
            f"{data.get('version')!r}")
    buses = []
    for raw in data["buses"]:
        buses.append(Bus(
            index=raw["index"],
            out_widths={int(k): v
                        for k, v in raw.get("out_widths", {}).items()},
            in_widths={int(k): v
                       for k, v in raw.get("in_widths", {}).items()},
            bi_widths={int(k): v
                       for k, v in raw.get("bi_widths", {}).items()},
            segments=list(raw.get("segments", [])),
        ))
    return Interconnect(buses,
                        bidirectional=data.get("bidirectional", False))


# ---------------------------------------------------------------------
def _stats_to_dict(stats: Dict[str, Any]) -> Dict[str, Any]:
    """Make a stats dict JSON-clean (BusAssignment values are tagged)."""
    out: Dict[str, Any] = {}
    for key, value in stats.items():
        if isinstance(value, BusAssignment):
            out[key] = {"__type__": "bus_assignment",
                        "bus_of": dict(value.bus_of),
                        "segment_of": dict(value.segment_of)}
        else:
            out[key] = value
    return out


def _stats_from_dict(data: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in (data or {}).items():
        if isinstance(value, dict) \
                and value.get("__type__") == "bus_assignment":
            out[key] = BusAssignment(dict(value["bus_of"]),
                                     dict(value["segment_of"]))
        else:
            out[key] = value
    return out


def result_to_dict(result) -> Dict[str, Any]:
    """Serialize a SynthesisResult (schedule, structure, stats, trail)."""
    out: Dict[str, Any] = {
        "version": FORMAT_VERSION,
        "schema_version": SCHEMA_VERSION,
        "initiation_rate": result.initiation_rate,
        "graph": graph_to_dict(result.graph),
        "partitioning": partitioning_to_dict(result.partitioning),
        "schedule": {
            "start_step": dict(result.schedule.start_step),
            "start_ns": dict(result.schedule.start_ns),
        },
        "resources": {f"{p}:{t}": n
                      for (p, t), n in result.resources.items()},
        "stats": _stats_to_dict(result.stats),
        "diagnostics": result.diagnostics.to_dict(),
    }
    if result.interconnect is not None:
        out["interconnect"] = interconnect_to_dict(result.interconnect)
    if result.assignment is not None:
        out["assignment"] = {
            "bus_of": dict(result.assignment.bus_of),
            "segment_of": dict(result.assignment.segment_of),
        }
    return out


def result_from_dict(data: Dict[str, Any], timing) -> "object":
    """Rebuild a SynthesisResult from :func:`result_to_dict` data.

    ``timing`` (a :class:`repro.modules.library.DesignTiming`) is needed
    because schedules validate ns starts against the clock period; it is
    deliberately not archived (module libraries are code, not data).
    The Chapter 3 flow's ``simple_allocation`` is reconstructible from
    the schedule and therefore not archived either.
    """
    from repro.core.flow import SynthesisResult
    from repro.scheduling.base import Schedule

    if data.get("version") != FORMAT_VERSION:
        raise FormatError(
            f"unsupported result format version {data.get('version')!r}")
    check_schema_version(data, "result archive")
    for key in ("graph", "partitioning", "schedule", "initiation_rate"):
        if key not in data:
            raise FormatError(f"result archive needs {key!r}")
    graph = graph_from_dict(data["graph"])
    partitioning = partitioning_from_dict(data["partitioning"])
    rate = data["initiation_rate"]
    schedule = Schedule(graph, timing, rate)
    start_ns = data["schedule"].get("start_ns", {})
    for name, step in sorted(data["schedule"]["start_step"].items()):
        schedule.place(name, step, start_ns.get(name))
    resources: Dict = {}
    for key, count in data.get("resources", {}).items():
        part, _, op_type = key.partition(":")
        resources[(int(part), op_type)] = count
    interconnect = None
    if "interconnect" in data:
        interconnect = interconnect_from_dict(data["interconnect"])
    assignment = None
    if "assignment" in data:
        assignment = BusAssignment(
            dict(data["assignment"]["bus_of"]),
            dict(data["assignment"].get("segment_of", {})))
    return SynthesisResult(
        graph=graph,
        partitioning=partitioning,
        initiation_rate=rate,
        schedule=schedule,
        resources=resources,
        interconnect=interconnect,
        assignment=assignment,
        stats=_stats_from_dict(data.get("stats")),
        diagnostics=Diagnostics.from_dict(data.get("diagnostics")),
    )


def dump_result(result, path: str) -> None:
    """Write a SynthesisResult archive as JSON."""
    with open(path, "w") as handle:
        json.dump(result_to_dict(result), handle, indent=1,
                  sort_keys=True)


def load_result(path: str, timing):
    """Load a SynthesisResult archive written by :func:`dump_result`."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise FormatError(f"cannot read result file {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise FormatError(f"result file {path!r} is not JSON: {exc}")
    return result_from_dict(data, timing)


def load_design(path: str):
    """Load a (graph, partitioning) pair from a design JSON file."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise FormatError(f"cannot read design file {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise FormatError(f"design file {path!r} is not JSON: {exc}")
    if "graph" not in data or "partitioning" not in data:
        raise FormatError("design file needs 'graph' and 'partitioning'")
    return (graph_from_dict(data["graph"]),
            partitioning_from_dict(data["partitioning"]))


def dump_design(graph: Cdfg, partitioning: Partitioning,
                path: str) -> None:
    """Write a (graph, partitioning) design file as JSON."""
    with open(path, "w") as handle:
        json.dump({
            "version": FORMAT_VERSION,
            "graph": graph_to_dict(graph),
            "partitioning": partitioning_to_dict(partitioning),
        }, handle, indent=1, sort_keys=True)
