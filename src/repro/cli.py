"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``synthesize``  run a flow on a built-in or JSON design and print the
                reports (optionally archiving the result as JSON);
``simulate``    synthesize and then cycle-accurately simulate;
``designs``     list the built-in benchmark designs;
``emit-rtl``    synthesize and dump the structural RTL;
``explore``     sweep the design space (rates x flows x pin scales x
                port models x sub-bus x branching) over a worker pool
                with a persistent result cache, and emit a
                Pareto-frontier report;
``serve``       run the long-running synthesis service: an asyncio
                HTTP job server with request coalescing, a warm worker
                pool, deadline-aware load shedding, and a graceful
                SIGTERM drain (``--shard-*`` flags seat it on a
                cluster ring);
``cluster``     supervise a local multi-shard cluster: a shared
                result-cache server, N ring-sharded ``serve``
                processes, and a routing front tier with batched
                admission and fleet-wide exactly-once coalescing;
``cache-server``run the cluster's shared result-cache server
                standalone;
``trace``       replay a distributed-trace JSONL export (written by
                ``--trace-export``) as rendered span trees with
                per-layer time attribution;
``check``       synthesize and run the unified design-rule checker
                (optionally the cross-flow differential oracle) on the
                result, printing structured violations;
``fuzz``        run the seeded differential fuzzer over random
                partitioned designs, shrinking and recording failures
                to a replayable JSONL corpus.

All flow commands accept ``--flow auto`` (the default: dispatch per
partitioning shape) and ``--timeout-ms`` (a wall-clock budget threaded
through every solver).  ``synthesize --json`` emits one machine-readable
result object; exit code 2 means the answer is valid but degraded (a
budget fallback fired — see the ``diagnostics`` trail).  ``explore``
exits 0 when every point completed cleanly and 2 when the sweep
finished but some points were degraded, pruned, skipped, or failed.
``check`` and ``fuzz`` exit 1 when they find enforceable violations,
a cross-flow disagreement, or a checker gap — the same contract the
CI jobs key off.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Tuple

from repro import synthesize
from repro.cdfg.graph import Cdfg
from repro.designs import (AR_GENERAL_PINS_BIDIR, AR_GENERAL_PINS_UNIDIR,
                           AR_SIMPLE_PINS, ELLIPTIC_PINS_BIDIR,
                           ELLIPTIC_PINS_UNIDIR, ar_general_design,
                           ar_simple_design, ar_stacked_design,
                           ar_stacked_pins, elliptic_design,
                           elliptic_resources)
from repro.errors import ReproError
from repro.io_json import _stats_to_dict, dump_result, load_design
from repro.modules.library import ar_filter_timing, elliptic_filter_timing
from repro.partition.model import Partitioning
from repro.reporting import (interconnect_listing, pins_summary,
                             schedule_listing)
from repro.robustness import BudgetExhausted, SolveBudget

#: Exit code for a valid answer produced through a budget fallback.
EXIT_DEGRADED = 2

BUILTINS = {
    "ar-simple": "AR lattice filter, simple 4-chip partitioning (Ch 3)",
    "ar-general": "AR lattice filter, general 3-chip partitioning "
                  "(Ch 4/5/6)",
    "ar-general-bidir": "AR general partitioning, bidirectional pins",
    "elliptic": "5th-order elliptic wave filter, 5 chips, recursive "
                "feedback (Ch 4/5)",
    "elliptic-bidir": "elliptic filter, bidirectional pins",
    "fir": "16-tap transposed FIR filter, 4-chip tap chain with "
           "recursive delay edges (rate >= 2)",
    "dct": "8-point DCT, 3 chips, feed-forward butterfly stages "
           "(Loeffler op profile)",
    "ar-stacked-N": "N independent AR filter copies on one 4-chip set "
                    "(warm-start / scaling benchmarks; e.g. "
                    "ar-stacked-4)",
}


def _load(name_or_path: str, rate: int
          ) -> Tuple[Cdfg, Partitioning, object, Optional[dict]]:
    """(graph, partitioning, timing, resources) for a design spec."""
    if name_or_path == "ar-simple":
        return (ar_simple_design(), AR_SIMPLE_PINS, ar_filter_timing(),
                None)
    if name_or_path == "ar-general":
        return (ar_general_design(), AR_GENERAL_PINS_UNIDIR,
                ar_filter_timing(), None)
    if name_or_path == "ar-general-bidir":
        return (ar_general_design(), AR_GENERAL_PINS_BIDIR,
                ar_filter_timing(), None)
    if name_or_path == "elliptic":
        return (elliptic_design(), ELLIPTIC_PINS_UNIDIR,
                elliptic_filter_timing(), elliptic_resources(rate))
    if name_or_path == "elliptic-bidir":
        return (elliptic_design(), ELLIPTIC_PINS_BIDIR,
                elliptic_filter_timing(), elliptic_resources(rate))
    if name_or_path == "fir":
        from repro.designs import FIR_PINS, fir_design
        return fir_design(), FIR_PINS, ar_filter_timing(), None
    if name_or_path == "dct":
        from repro.designs import DCT_PINS, dct_design
        return dct_design(), DCT_PINS, ar_filter_timing(), None
    if name_or_path.startswith("ar-stacked-"):
        try:
            copies = int(name_or_path[len("ar-stacked-"):])
        except ValueError:
            copies = 0
        if copies >= 1:
            return (ar_stacked_design(copies), ar_stacked_pins(copies),
                    ar_filter_timing(), None)
    graph, partitioning = load_design(name_or_path)
    return graph, partitioning, ar_filter_timing(), None


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    """Tracing flags shared by every traced command."""
    parser.add_argument("--trace", action="store_true",
                        help="enable distributed tracing (spans from "
                             "pass pipeline to solver phases; see "
                             "`repro trace` to replay an export)")
    parser.add_argument("--trace-sample", type=float, default=1.0,
                        metavar="RATE",
                        help="fraction of root requests to trace "
                             "(deterministic accumulator sampling; "
                             "default: 1.0)")
    parser.add_argument("--trace-export", default=None, metavar="PATH",
                        help="append finished spans as JSONL here "
                             "(implies --trace; multi-process safe)")


def _configure_obs(args) -> None:
    """Apply the obs flags; env mirroring reaches subprocesses."""
    if not (getattr(args, "trace", False)
            or getattr(args, "trace_export", None)):
        return
    from repro.obs import configure
    configure(enabled=True,
              sample_rate=getattr(args, "trace_sample", 1.0),
              export_path=getattr(args, "trace_export", None))


def _budget(args) -> Optional[SolveBudget]:
    timeout = getattr(args, "timeout_ms", None)
    if timeout is None:
        return None
    return SolveBudget(deadline_ms=timeout)


def _synthesize(args) -> object:
    graph, pins, timing, resources = _load(args.design, args.rate)
    return synthesize(
        graph, pins, timing, args.rate,
        flow=args.flow,
        budget=_budget(args),
        resources=resources,
        subbus_sharing=args.subbus,
        slot_reserve=args.slot_reserve,
        branching_factor=args.branching,
        scheduler=args.scheduler,
        pipe_length=args.pipe_length)


def cmd_designs(_args) -> int:
    """List the built-in benchmark designs."""
    for name, description in BUILTINS.items():
        print(f"{name:20s} {description}")
    return 0


def _result_json(args, result) -> dict:
    """The machine-readable ``synthesize --json`` payload."""
    from repro.io_json import SCHEMA_VERSION
    problems = result.verify()
    return {
        "schema_version": SCHEMA_VERSION,
        "design": args.design,
        "flow": args.flow,
        "rate": args.rate,
        "pipe_length": result.pipe_length,
        "pins_used": {str(p): n for p, n in result.pins_used().items()},
        "degraded": result.degraded,
        "valid": not problems,
        "problems": problems,
        "diagnostics": result.diagnostics.to_dict(),
        "stats": _stats_to_dict(result.stats),
    }


def cmd_synthesize(args) -> int:
    """Run a flow and print the schedule/connection/pin reports."""
    _configure_obs(args)
    result = _synthesize(args)
    if args.json:
        print(json.dumps(_result_json(args, result), indent=1,
                         sort_keys=True))
        if args.output:
            dump_result(result, args.output)
        return EXIT_DEGRADED if result.degraded else 0
    if args.gantt:
        from repro.reporting import gantt_chart
        print(gantt_chart(result.schedule, result.interconnect,
                          result.assignment))
        print()
    print(schedule_listing(result.schedule))
    print()
    if result.interconnect is not None:
        print(interconnect_listing(result.interconnect))
        print()
    print(pins_summary(result.partitioning, result.pins_used(),
                       pipe_length=result.pipe_length))
    if args.output:
        dump_result(result, args.output)
        print(f"\nresult archived to {args.output}")
    if result.degraded:
        print("\nDEGRADED result (budget fallbacks fired):")
        for line in result.diagnostics.trail:
            print(f"  {line}")
        return EXIT_DEGRADED
    return 0


def cmd_simulate(args) -> int:
    """Synthesize then cycle-accurately simulate with random stimuli."""
    from repro.sim import simulate_result
    result = _synthesize(args)
    report = simulate_result(result, n_instances=args.instances,
                             seed=args.seed)
    print(report)
    return 0


def _csv(text: str, convert):
    """Parse a comma-separated CLI axis value list."""
    return [convert(part.strip()) for part in text.split(",")
            if part.strip()]


def _bool_axis(text: str):
    mapping = {"on": [True], "off": [False],
               "both": [False, True]}
    try:
        return mapping[text]
    except KeyError:
        raise ReproError(
            f"expected on/off/both, got {text!r}") from None


def cmd_explore(args) -> int:
    """Sweep the design space and emit a Pareto report."""
    _configure_obs(args)
    from repro.designs import elliptic_resources
    from repro.explore import (DesignSpace, Executor, SweepSpec,
                               build_report, write_report)
    from repro.explore.cache import open_result_cache

    rates = _csv(args.rates, int)
    if not rates:
        raise ReproError("--rates needs at least one initiation rate")
    graph, pins, _timing, _resources = _load(args.design, rates[0])
    timing_name = ("elliptic" if args.design.startswith("elliptic")
                   else "ar")
    resources_for = (elliptic_resources
                     if args.design.startswith("elliptic") else None)
    design = DesignSpace(name=args.design, graph=graph,
                         partitioning=pins, timing=timing_name,
                         resources_for=resources_for)

    axes = {"rate": rates,
            "flow": _csv(args.flows, str)}
    if args.pin_scales != "1.0":
        axes["pin_scale"] = _csv(args.pin_scales, float)
    if args.port_models:
        axes["port_model"] = _csv(args.port_models, str)
    if args.subbus_axis != "off":
        axes["subbus_sharing"] = _bool_axis(args.subbus_axis)
    if args.branchings != "2":
        axes["branching_factor"] = _csv(args.branchings, int)
    if args.slot_reserves != "0":
        axes["slot_reserve"] = _csv(args.slot_reserves, int)
    if args.schedulers != "list":
        axes["scheduler"] = _csv(args.schedulers, str)
    spec = SweepSpec(axes=axes)

    cache = open_result_cache(args.cache)
    oracle = None
    if args.warm or args.oracle_cache:
        from repro.core.oracle_store import OracleStore
        oracle = OracleStore(args.oracle_cache)
    executor = Executor(workers=args.workers,
                        cache=cache,
                        deadline_ms=args.timeout_ms,
                        prune_dominated=not args.no_prune,
                        warm=args.warm,
                        oracle_store=oracle)
    jobs = spec.expand(design)
    result = executor.run(jobs)
    report = build_report(args.design, spec, result)
    if args.compact_cache:
        compaction = cache.compact()
        if not args.json:
            print(f"cache compacted: {compaction['entries']} live "
                  f"entries kept, {compaction['removed']} dead lines "
                  f"removed")

    if args.out:
        write_report(report, args.out)
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        counts = report["status_counts"]
        print(f"explored {len(report['points'])} points "
              f"({result.workers} workers, "
              f"{report['wall_ms'] / 1000.0:.2f}s, "
              f"{report['points_per_sec']:.1f} points/s)")
        print(f"  statuses: " + ", ".join(
            f"{k}={v}" for k, v in sorted(counts.items())))
        cache = report["cache"]
        print(f"  cache: {cache['hits']} hits / "
              f"{cache['misses']} misses "
              f"(hit rate {cache['hit_rate']:.0%})")
        print(f"  Pareto front ({len(report['pareto'])} points over "
              + ", ".join(report["objectives"]) + "):")
        by_index = {p["index"]: p for p in report["points"]}
        for index in report["pareto"]:
            point = by_index[index]
            metrics = point["metrics"]
            params = " ".join(f"{k}={v}"
                              for k, v in sorted(point["params"].items()))
            print(f"    #{index:<3d} {params}")
            print(f"         buses={metrics['buses']} "
                  f"pins={metrics['total_pins']} "
                  f"latency={metrics['latency']} "
                  f"wall={metrics['wall_ms']:.0f}ms")
        if args.out:
            print(f"report written to {args.out}")
    return 0 if result.all_ok else EXIT_DEGRADED


def cmd_serve(args) -> int:
    """Run the long-running synthesis service until SIGTERM/SIGINT."""
    _configure_obs(args)
    from repro.service import ServiceConfig, ShardIdentity, serve
    shard = None
    if args.shard_count > 0:
        shard = ShardIdentity(
            name=args.shard_name or f"shard-{args.shard_index}",
            index=args.shard_index, count=args.shard_count)
    config = ServiceConfig(host=args.host, port=args.port,
                           workers=args.workers,
                           max_queue=args.max_queue,
                           cache_path=args.cache,
                           oracle_path=args.oracle_cache,
                           default_timeout_ms=args.timeout_ms,
                           pool_mode=args.pool,
                           shard=shard)
    return serve(config)


def cmd_cache_server(args) -> int:
    """Run the cluster's shared result-cache server."""
    from repro.cluster import serve_cache
    return serve_cache(args.path, host=args.host, port=args.port,
                       sync=not args.no_sync)


def cmd_cluster(args) -> int:
    """Supervise a local cluster: cache server + shards + front."""
    _configure_obs(args)
    from repro.cluster import serve_cluster
    return serve_cluster(shards=args.shards, host=args.host,
                         port=args.port,
                         workers_per_shard=args.workers_per_shard,
                         max_queue=args.max_queue, pool=args.pool,
                         timeout_ms=args.timeout_ms,
                         cache_path=args.cache,
                         oracle_path=args.oracle_cache,
                         batch_window_ms=args.batch_window_ms)


def cmd_check(args) -> int:
    """Synthesize, then run the unified design-rule checker."""
    from repro.check import check_result, run_differential
    from repro.check.rules import enforceable_violations

    if args.oracle:
        from repro.pipeline.registry import resolve_scheduler
        graph, pins, timing, resources = _load(args.design, args.rate)
        # A non-default --scheduler widens the oracle along the
        # backend axis: the chosen backend runs against the list
        # baseline (and, through the flow axis, against FDS).
        chosen = resolve_scheduler(args.scheduler)
        schedulers = None if chosen == "list" else ("list", chosen)
        oracle = run_differential(graph, pins, timing, args.rate,
                                  timeout_ms=args.timeout_ms,
                                  resources=resources,
                                  schedulers=schedulers)
        if args.json:
            print(json.dumps(oracle.to_dict(), indent=1,
                             sort_keys=True))
        else:
            for outcome in oracle.outcomes:
                extra = f" ({outcome.error})" if outcome.error else ""
                print(f"{outcome.label:24s} {outcome.outcome}{extra}")
            for message in (oracle.violations()
                            + oracle.disagreements
                            + oracle.checker_gaps):
                print(f"  {message}")
            print("oracle: " + ("ok" if oracle.ok else "FAILED"))
        return 0 if oracle.ok else 1

    result = _synthesize(args)
    report = check_result(result, disable=tuple(args.disable or ()))
    hard = enforceable_violations(result, report)
    if args.json:
        payload = report.to_dict()
        payload["enforceable"] = [v.to_dict() for v in hard]
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(f"rules run: {', '.join(report.rules_run)}")
        for message in report.messages():
            print(f"  {message}")
        print("check: " + ("ok" if report.ok else
                           ("tolerated (declared pin overruns)"
                            if not hard else "FAILED")))
    return 0 if not hard else 1


def cmd_trace(args) -> int:
    """Replay a trace JSONL export as rendered span trees."""
    from repro.obs.render import render_file
    try:
        text, count = render_file(args.path, trace_id=args.trace_id,
                                  limit=args.limit)
    except OSError as exc:
        raise ReproError(f"cannot read trace export: {exc}") from None
    if text:
        try:
            print(text)
        except BrokenPipeError:
            # Pager/head closed the pipe mid-render; that's success.
            os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
            return 0
    if count == 0:
        print("no traces in export", file=sys.stderr)
        return 1
    return 0


def cmd_fuzz(args) -> int:
    """Run the seeded differential fuzzer; exit 1 on any failure."""
    from repro.check import fuzz as run_fuzz

    if args.serve or args.cluster:
        return _cmd_fuzz_campaign(args)
    report = run_fuzz(args.seed, cases=args.cases,
                      timeout_ms=args.timeout_ms,
                      corpus_path=args.corpus,
                      do_shrink=not args.no_shrink)
    if args.json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(f"fuzz seed={args.seed!r}: {report.cases_run} cases, "
              f"{len(report.failures)} failures")
        for failure in report.failures:
            print(f"  case {failure.case.to_dict()}")
            print(f"    signature: {', '.join(failure.signature())}")
        for name, messages in (
                ("violations", report.violations),
                ("disagreements", report.disagreements),
                ("checker gaps", report.checker_gaps)):
            for message in messages:
                print(f"  [{name}] {message}")
    return 0 if report.ok else 1


def _cmd_fuzz_campaign(args) -> int:
    """``fuzz --serve`` / ``--cluster``: service-path fault campaign."""
    from repro.check import run_campaign

    mode = "cluster" if args.cluster else "serve"
    progress = None if args.json else (
        lambda line: print(f"  {line}", file=sys.stderr))
    report = run_campaign(args.seed, cases=args.cases, mode=mode,
                          faults=(args.faults == "on"),
                          timeout_ms=args.timeout_ms,
                          corpus_path=args.corpus,
                          do_shrink=not args.no_shrink,
                          progress=progress)
    if args.json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(f"campaign seed={args.seed!r} mode={mode} "
              f"faults={args.faults}: {report.cases_run} cases, "
              f"{report.requests_sent} requests, "
              f"{report.faults_fired} faults, "
              f"{len(report.failures)} failures")
        for status, count in sorted(report.outcomes.items()):
            print(f"  outcome {status}: {count}")
        for failure in report.failures:
            print(f"  case {failure.case.to_dict()}")
            for violation in failure.violations:
                print(f"    {violation}")
    return 0 if report.ok else 1


def cmd_emit_rtl(args) -> int:
    """Synthesize then dump the structural RTL."""
    from repro.rtl import emit_structural
    result = _synthesize(args)
    text = emit_structural(result.graph, result.schedule,
                           result.interconnect, result.assignment,
                           design_name=args.design.replace("-", "_"))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"RTL written to {args.output}")
    else:
        print(text)
    return 0


def _add_flow_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("design",
                        help="built-in design name (see `designs`) or "
                             "a design JSON file")
    parser.add_argument("--rate", "-L", type=int, default=3,
                        help="initiation rate (default 3)")
    parser.add_argument("--flow",
                        choices=["auto", "simple", "connection-first",
                                 "schedule-first"],
                        default="auto",
                        help="synthesis flow (default: auto-dispatch "
                             "on the partitioning shape)")
    parser.add_argument("--timeout-ms", type=int, default=None,
                        help="wall-clock budget threaded through every "
                             "solver; budget-starved flows degrade "
                             "gracefully (exit code 2)")
    parser.add_argument("--pipe-length", type=int, default=None,
                        help="pipe budget for the schedule-first flow "
                             "(default: critical path + 2L)")
    parser.add_argument("--subbus", action="store_true",
                        help="enable Chapter 6 sub-bus sharing")
    parser.add_argument("--slot-reserve", type=int, default=0,
                        help="bus slots held back during connection "
                             "synthesis (more buses, more bandwidth)")
    parser.add_argument("--branching", type=int, default=2,
                        help="heuristic search branching factor")
    parser.add_argument("--scheduler", default="list",
                        help="scheduler backend for the simple and "
                             "connection-first flows: any name in the "
                             "backend registry (built-ins: list, heap, "
                             "postpone, modulo; default list)")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pin-constrained multi-chip high-level synthesis "
                    "(Hung 1992 reproduction)",
        epilog="exit codes: 0 success; 1 failure (bad arguments, "
               "unloadable design, a budget exhausted with no "
               "fallback left, or a `check`/`fuzz` run that found "
               "violations, a cross-flow mismatch, or a checker "
               "gap); 2 valid but degraded (a budget fallback "
               "fired, or an `explore` sweep finished with "
               "degraded/pruned/skipped/failed points).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_designs = sub.add_parser("designs",
                               help="list built-in benchmark designs")
    p_designs.set_defaults(func=cmd_designs)

    p_syn = sub.add_parser("synthesize", help="run a synthesis flow")
    _add_flow_options(p_syn)
    _add_obs_options(p_syn)
    p_syn.add_argument("--output", "-o", help="archive result as JSON")
    p_syn.add_argument("--json", action="store_true",
                       help="print one machine-readable result object "
                            "instead of the text reports")
    p_syn.add_argument("--gantt", action="store_true",
                       help="render unit/bus lanes over control steps")
    p_syn.set_defaults(func=cmd_synthesize)

    p_sim = sub.add_parser("simulate",
                           help="synthesize then simulate cycle by "
                                "cycle")
    _add_flow_options(p_sim)
    p_sim.add_argument("--instances", type=int, default=8)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=cmd_simulate)

    p_rtl = sub.add_parser("emit-rtl",
                           help="synthesize then dump structural RTL")
    _add_flow_options(p_rtl)
    p_rtl.add_argument("--output", "-o", help="write RTL to a file")
    p_rtl.set_defaults(func=cmd_emit_rtl)

    p_exp = sub.add_parser(
        "explore",
        help="sweep the design space over a worker pool and report "
             "the Pareto frontier")
    p_exp.add_argument("design",
                       help="built-in design name (see `designs`) or "
                            "a design JSON file")
    p_exp.add_argument("--rates", default="3",
                       help="comma-separated initiation rates "
                            "(default: 3)")
    p_exp.add_argument("--flows", default="auto",
                       help="comma-separated flows (default: auto)")
    p_exp.add_argument("--pin-scales", default="1.0",
                       help="comma-separated pin-budget multipliers "
                            "(default: 1.0)")
    p_exp.add_argument("--port-models", default="",
                       help="comma-separated port models "
                            "(unidirectional,bidirectional)")
    p_exp.add_argument("--subbus-axis", default="off",
                       choices=["off", "on", "both"],
                       help="Chapter 6 sub-bus sharing axis "
                            "(default: off)")
    p_exp.add_argument("--branchings", default="2",
                       help="comma-separated search branching factors "
                            "(default: 2)")
    p_exp.add_argument("--schedulers", default="list",
                       help="scheduler axis: comma-separated backend "
                            "registry names (e.g. list,heap,modulo)")
    p_exp.add_argument("--slot-reserves", default="0",
                       help="comma-separated bus-slot reserves "
                            "(default: 0)")
    p_exp.add_argument("--workers", type=int,
                       default=min(4, os.cpu_count() or 1),
                       help="worker processes (default: min(4, cores); "
                            "1 runs inline)")
    p_exp.add_argument("--timeout-ms", type=float, default=None,
                       help="global sweep deadline, carved into "
                            "per-point solve budgets")
    p_exp.add_argument("--cache", default=None,
                       help="JSON-lines result cache file (or "
                            "remote://host:port for a cluster cache "
                            "server); solved points are skipped on "
                            "re-runs")
    p_exp.add_argument("--no-prune", action="store_true",
                       help="disable cancellation of queued points "
                            "whose optimistic metrics are dominated")
    p_exp.add_argument("--warm", action="store_true",
                       help="warm-start tier: chain neighboring pin "
                            "budgets on one worker, reusing solver "
                            "bases and the shared pin-oracle store")
    p_exp.add_argument("--oracle-cache", default=None,
                       help="persist the shared pin-oracle store as "
                            "JSONL at this path (implies a shared "
                            "store even without --warm)")
    p_exp.add_argument("--compact-cache", action="store_true",
                       help="after the sweep, atomically rewrite the "
                            "cache file down to its live index "
                            "(drops dead duplicate/corrupt lines)")
    p_exp.add_argument("--out", "-o",
                       help="write the machine-readable report here")
    p_exp.add_argument("--json", action="store_true",
                       help="print the full report as JSON instead of "
                            "the text summary")
    _add_obs_options(p_exp)
    p_exp.set_defaults(func=cmd_explore)

    p_chk = sub.add_parser(
        "check",
        help="synthesize and run the unified design-rule checker "
             "(or the cross-flow differential oracle); exit 1 on "
             "enforceable violations or an oracle failure")
    _add_flow_options(p_chk)
    p_chk.add_argument("--oracle", action="store_true",
                       help="run every applicable flow and cross-"
                            "compare instead of checking one result")
    p_chk.add_argument("--disable", action="append", default=[],
                       metavar="RULE",
                       help="skip a named rule (repeatable; see "
                            "repro.check.rule_names())")
    p_chk.add_argument("--json", action="store_true",
                       help="print the structured report as JSON")
    p_chk.set_defaults(func=cmd_check)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="run the seeded differential fuzzer over random "
             "partitioned designs; exit 1 on any recorded failure")
    p_fuzz.add_argument("--seed", default="repro",
                        help="string seed for the case stream "
                             "(default: repro)")
    p_fuzz.add_argument("--cases", type=int, default=200,
                        help="number of generated cases (default: 200)")
    p_fuzz.add_argument("--timeout-ms", type=float, default=4000.0,
                        help="per-flow solve budget per case "
                             "(default: 4000)")
    p_fuzz.add_argument("--corpus", default=None,
                        help="JSONL corpus file; recorded failures "
                             "replay first and new ones are appended")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="record failing cases without greedy "
                             "shrinking")
    p_fuzz.add_argument("--json", action="store_true",
                        help="print the fuzz report as JSON")
    mode = p_fuzz.add_mutually_exclusive_group()
    mode.add_argument("--serve", action="store_true",
                      help="campaign mode: drive cases through a live "
                           "in-process service while a deterministic "
                           "fault injector perturbs it")
    mode.add_argument("--cluster", action="store_true",
                      help="campaign mode against a live 2-shard "
                           "cluster behind a front tier (adds "
                           "shard-kill/restart faults)")
    p_fuzz.add_argument("--faults", choices=["on", "off"],
                        default="on",
                        help="enable the fault injector in campaign "
                             "mode (default: on)")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_srv = sub.add_parser(
        "serve",
        help="run the long-running synthesis service (async HTTP job "
             "server with coalescing, warm workers, load shedding)")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8764,
                       help="TCP port (default: 8764; 0 picks a free "
                            "port)")
    p_srv.add_argument("--workers", type=int,
                       default=min(4, os.cpu_count() or 1),
                       help="warm worker processes "
                            "(default: min(4, cores))")
    p_srv.add_argument("--max-queue", type=int, default=64,
                       help="admission limit on in-flight jobs; "
                            "beyond it requests are shed with 429 "
                            "(default: 64)")
    p_srv.add_argument("--cache", default=None,
                       help="JSON-lines result cache file shared with "
                            "`repro explore`; appends are fsynced")
    p_srv.add_argument("--timeout-ms", type=float, default=30000.0,
                       help="default per-request deadline when the "
                            "request carries none (default: 30000)")
    p_srv.add_argument("--pool", choices=["process", "thread"],
                       default="process",
                       help="worker pool mode (default: process)")
    p_srv.add_argument("--oracle-cache", default=None,
                       help="persist the shared pin-oracle store as "
                            "JSONL at this path (workers inherit it "
                            "warm; deltas merge back on completion)")
    p_srv.add_argument("--shard-name", default=None,
                       help="this server's name on the cluster ring "
                            "(default: shard-<index> when --shard-count "
                            "is set)")
    p_srv.add_argument("--shard-index", type=int, default=0,
                       help="this server's seat index on the ring")
    p_srv.add_argument("--shard-count", type=int, default=0,
                       help="fleet size; 0 (default) runs standalone, "
                            ">0 enables shard mode (readiness also "
                            "requires a coherent ring seat)")
    _add_obs_options(p_srv)
    p_srv.set_defaults(func=cmd_serve)

    p_cache = sub.add_parser(
        "cache-server",
        help="run the cluster's shared result-cache server "
             "(length-prefixed JSON over TCP, backed by the JSONL "
             "result cache)")
    p_cache.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_cache.add_argument("--port", type=int, default=8769,
                         help="TCP port (default: 8769; 0 picks a "
                              "free port)")
    p_cache.add_argument("--path", default=None,
                         help="JSONL cache file (default: in-memory, "
                              "still shared across connected shards)")
    p_cache.add_argument("--no-sync", action="store_true",
                         help="skip fsync on appends (faster, less "
                              "durable)")
    p_cache.set_defaults(func=cmd_cache_server)

    p_clu = sub.add_parser(
        "cluster",
        help="run a supervised local cluster: shared cache server, N "
             "ring-sharded `serve` processes, and a routing front "
             "tier with batched admission")
    p_clu.add_argument("--shards", type=int, default=2,
                       help="solver shard count (default: 2)")
    p_clu.add_argument("--host", default="127.0.0.1",
                       help="bind address for every tier "
                            "(default: 127.0.0.1)")
    p_clu.add_argument("--port", type=int, default=8770,
                       help="front-tier TCP port (default: 8770; 0 "
                            "picks a free port); shard and cache "
                            "ports are always OS-assigned")
    p_clu.add_argument("--workers-per-shard", type=int, default=1,
                       help="warm worker processes per shard "
                            "(default: 1)")
    p_clu.add_argument("--max-queue", type=int, default=64,
                       help="per-shard admission limit (default: 64)")
    p_clu.add_argument("--pool", choices=["process", "thread"],
                       default="process",
                       help="per-shard worker pool mode "
                            "(default: process)")
    p_clu.add_argument("--timeout-ms", type=float, default=30000.0,
                       help="default per-request deadline "
                            "(default: 30000)")
    p_clu.add_argument("--cache", default=None,
                       help="JSONL file behind the shared cache "
                            "server (default: in-memory)")
    p_clu.add_argument("--oracle-cache", default=None,
                       help="per-shard pin-oracle JSONL path prefix "
                            "(each shard appends .<name>)")
    p_clu.add_argument("--batch-window-ms", type=float, default=10.0,
                       help="same-design requests arriving within "
                            "this window fold into one sweep per "
                            "owner shard; 0 disables (default: 10)")
    _add_obs_options(p_clu)
    p_clu.set_defaults(func=cmd_cluster)

    p_trc = sub.add_parser(
        "trace",
        help="replay a trace JSONL export (from --trace-export) as "
             "rendered span trees with per-layer attribution; exit 1 "
             "when the export holds no traces")
    p_trc.add_argument("path", help="JSONL span export file")
    p_trc.add_argument("--trace-id", default=None,
                       help="only render traces whose id starts with "
                            "this prefix")
    p_trc.add_argument("--limit", type=int, default=0,
                       help="render at most N traces, most recent "
                            "first (default: all)")
    p_trc.set_defaults(func=cmd_trace)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BudgetExhausted as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.diagnostics is not None:
            for line in exc.diagnostics.trail:
                print(f"  {line}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
