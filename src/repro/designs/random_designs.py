"""Synthetic partitioned-design generator for tests and stress runs.

Generates layered DAGs of adds/muls spread over chips, with I/O nodes
inserted automatically on the cut arcs — useful for property-based
tests (scheduling invariants must hold on *any* valid design, not just
the two reconstructed benchmarks) and as sweep fodder for the design-
space explorer.

Determinism contract: the generated design is a pure function of the
explicit arguments.  No module-level RNG state is read or written (the
``random`` module's global generator is never touched), and every
random stream is seeded with a *string* derived from the seed —
CPython seeds ``random.Random`` from strings via SHA-512, so the
stream is identical across processes, platforms, and
``PYTHONHASHSEED`` values.  That stability is what makes explorer
cache keys for random designs valid across worker-pool boundaries.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.graph import Cdfg
from repro.partition.io_insertion import insert_io_nodes
from repro.partition.model import ChipSpec, Partitioning, OUTSIDE_WORLD


def _stream(seed: int, label: str) -> random.Random:
    """An independent, process-stable random stream for one section.

    String seeding avoids ``hash()`` (randomized per process for str);
    per-section streams mean adding a sampling call in one section
    cannot reshuffle every design generated after it.
    """
    return random.Random(f"repro-random-design:{seed}:{label}")


def random_partitioned_design(seed: int,
                              n_chips: int = 3,
                              n_ops: int = 12,
                              widths: Tuple[int, ...] = (8, 16),
                              pin_budget: int = 256,
                              bidirectional: bool = False,
                              output_pins: int = None,
                              ) -> Tuple[Cdfg, Partitioning]:
    """A random layered design plus a (generous) partitioning.

    Deterministic for a given ``seed`` (see the module docstring for
    the exact contract).  Operations land on chips with jitter, so
    cross-chip arcs are plentiful; :func:`insert_io_nodes` then splices
    the I/O operations the synthesis flows consume.  External inputs
    feed the first operation of each chip.

    ``output_pins`` fixes every real chip's input/output pin split
    (``output_pins`` out of ``pin_budget``); the outside-world pseudo
    chip keeps a free split.  Incompatible with ``bidirectional``.
    """
    rng_inputs = _stream(seed, "inputs")
    rng_ops = _stream(seed, "ops")
    b = CdfgBuilder(f"random-{seed}")

    # One external input per chip, consumed inside that chip.
    ext_inputs: Dict[int, str] = {}
    for chip in range(1, n_chips + 1):
        width = rng_inputs.choice(widths)
        name = b.io(f"in{chip}", f"v.in{chip}",
                    source=b.const(f"src{chip}",
                                   partition=OUTSIDE_WORLD,
                                   bit_width=width),
                    dests=[], source_partition=OUTSIDE_WORLD,
                    dest_partition=chip, bit_width=width)
        ext_inputs[chip] = name

    #: producer name -> chip; only *functional* producers may feed
    #: other chips (the splicer inserts I/O nodes on those arcs).
    functional: List[Tuple[str, int]] = []
    for index in range(n_ops):
        chip = 1 + ((index + rng_ops.randrange(n_chips)) % n_chips)
        op_type = rng_ops.choice(["add", "add", "mul"])
        width = rng_ops.choice(widths)
        candidates = [name for name, _c in functional[-8:]]
        same_chip_input = ext_inputs[chip]
        inputs = [same_chip_input] if not candidates else [
            rng_ops.choice(candidates)
            for _ in range(rng_ops.randrange(1, 3))]
        name = b.op(f"op{index}", op_type, chip, inputs=inputs,
                    bit_width=width)
        functional.append((name, chip))

    # Route the last two values to the outside world.
    for index, (producer, chip) in enumerate(functional[-2:]):
        b.io(f"out{index}", f"v.out{index}", source=producer, dests=[],
             source_partition=chip, dest_partition=OUTSIDE_WORLD,
             bit_width=8)

    graph = b.build()
    insert_io_nodes(graph, prefix="c")

    chips = {OUTSIDE_WORLD: ChipSpec(pin_budget,
                                     bidirectional=bidirectional)}
    for chip in range(1, n_chips + 1):
        if output_pins is not None:
            chips[chip] = ChipSpec(
                pin_budget, output_pins=output_pins,
                input_pins=pin_budget - output_pins)
        else:
            chips[chip] = ChipSpec(pin_budget,
                                   bidirectional=bidirectional)
    return graph, Partitioning(chips)
