"""Fifth-order elliptic wave filter benchmark (Figure 4.20).

Operation profile: 26 additions + 8 multiplications, all values 16 bits
(Section 4.4.2).  Additions and I/O transfers take one cycle;
multiplications take two cycles on non-pipelined units.  The filter's
storage elements appear as data-recursive edges; as in the dissertation
their degree is set to 4 (four interleaved data streams), which brings
the minimum initiation rate down to 5 cycles.

The reconstruction's critical loop (``X33 -> add2 -> Xf -> add5 ->
mul2 -> Xe -> add8 -> add9 -> Xh -> add12 -> mul4 -> Xj -> ... ->
add26``) has a start-to-start span of exactly ``19 = 4*5 - 1`` cycles,
so initiation rate 5 is *boundary-feasible*: force-directed scheduling
can meet it, while the greedy list scheduler fails there and succeeds at
rates 6 and 7 — reproducing the Section 4.4.2 observation.

Partitioning: five chips in a processing chain P1 -> ... -> P5 with the
output fed back recursively to P1 (``X33``, ``X39``) and two shorter
feedback transfers (``X13``: P3 -> P1, ``X26``: P4 -> P2).  The external
input is consumed by P1 and P2 as one value with two transfers
(``Ia``/``Ib`` — the multi-fanout pair of Tables 4.15/4.19); ``Op`` is
the output.
"""

from __future__ import annotations

from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.graph import Cdfg
from repro.partition.model import ChipSpec, Partitioning, OUTSIDE_WORLD

#: Pin budgets in the spirit of Table 4.14 (unidirectional) and
#: Table 4.17 (bidirectional), sized for this reconstruction's
#: transfer counts (all values 16 bits).
ELLIPTIC_PINS_UNIDIR = Partitioning({
    OUTSIDE_WORLD: ChipSpec(48),
    1: ChipSpec(96),
    2: ChipSpec(80),
    3: ChipSpec(96),
    4: ChipSpec(96),
    5: ChipSpec(80),
})
ELLIPTIC_PINS_BIDIR = Partitioning({
    OUTSIDE_WORLD: ChipSpec(32, bidirectional=True),
    1: ChipSpec(80, bidirectional=True),
    2: ChipSpec(64, bidirectional=True),
    3: ChipSpec(80, bidirectional=True),
    4: ChipSpec(80, bidirectional=True),
    5: ChipSpec(64, bidirectional=True),
})

#: Degree of every data-recursive edge (the dissertation's modification
#: for four multiplexed data streams).
RECURSION_DEGREE = 4


def elliptic_resources(initiation_rate: int):
    """Functional-unit constraints in the spirit of Tables 4.14/4.17.

    At tight rates the dissertation grants more than the theoretical
    minimum (e.g. two adders on some chips at rate 6) so the greedy
    list scheduler has slack on the recursive loops.
    """
    extra_adders = {
        5: {1: 3, 2: 2, 3: 2, 4: 3, 5: 3},
        6: {1: 2, 2: 1, 3: 2, 4: 2, 5: 2},
        7: {1: 2, 2: 1, 3: 1, 4: 2, 5: 2},
    }.get(initiation_rate, {})
    extra_muls = {
        5: {1: 2, 2: 1, 3: 2, 4: 2, 5: 2},
        6: {5: 2},
        7: {5: 2},
    }.get(initiation_rate, {})
    resources = {}
    for chip in range(1, 6):
        resources[(chip, "add")] = max(1, extra_adders.get(chip, 1))
        resources[(chip, "mul")] = max(1, extra_muls.get(chip, 1))
    return resources


def elliptic_design(degree: int = RECURSION_DEGREE) -> Cdfg:
    """Build the partitioned elliptic filter (26 adds, 8 muls)."""
    b = CdfgBuilder("elliptic")
    W = OUTSIDE_WORLD
    BITS = 16

    # External input value, consumed by P1 and P2 (same value, two
    # transfers: the (Ia, Ib) pair of Tables 4.15/4.19).
    src = b.const("src.in", partition=W, bit_width=BITS)
    b.io("Ia", "v.in", source=src, dests=[], source_partition=W,
         dest_partition=1, bit_width=BITS)
    b.io("Ib", "v.in", source=src, dests=[], source_partition=W,
         dest_partition=2, bit_width=BITS)

    # ---- P1 ----------------------------------------------------------
    b.op("add1", "add", 1, inputs=["Ia"], bit_width=BITS)
    b.op("add2", "add", 1, inputs=["Ia"], bit_width=BITS)      # + X33
    b.op("add3", "add", 1, inputs=["add1"], bit_width=BITS)    # + X13
    b.op("mul1", "mul", 1, inputs=["add3"], bit_width=BITS)
    b.op("add4", "add", 1, inputs=["mul1", "add2"], bit_width=BITS)
    b.op("add15", "add", 1, inputs=["add1"], bit_width=BITS)   # + X39
    b.op("mul6", "mul", 1, inputs=["add15"], bit_width=BITS)
    b.op("add16", "add", 1, inputs=["mul6", "add15"], bit_width=BITS)
    b.io("Xf", "v.xf", source="add2", dests=[], source_partition=1,
         dest_partition=2, bit_width=BITS)
    # add4's value fans out to P2 and P3 (two transfers, one value).
    b.io("Xa", "v.a4", source="add4", dests=[], source_partition=1,
         dest_partition=2, bit_width=BITS)
    b.io("Xk", "v.a4", source="add4", dests=[], source_partition=1,
         dest_partition=3, bit_width=BITS)
    b.io("Xg", "v.xg", source="add16", dests=[], source_partition=1,
         dest_partition=3, bit_width=BITS)

    # ---- P2 ----------------------------------------------------------
    b.op("add5", "add", 2, inputs=["Xf", "Ib"], bit_width=BITS)
    b.op("mul2", "mul", 2, inputs=["add5"], bit_width=BITS)
    b.op("add6", "add", 2, inputs=["Xf"], bit_width=BITS)      # + X26
    b.op("add7", "add", 2, inputs=["add6", "Xf"], bit_width=BITS)
    b.op("add17", "add", 2, inputs=["Xa", "add6"], bit_width=BITS)
    b.op("add18", "add", 2, inputs=["add17", "add7"], bit_width=BITS)
    b.io("Xe", "v.xe", source="mul2", dests=[], source_partition=2,
         dest_partition=3, bit_width=BITS)
    b.io("Xb", "v.xb", source="add7", dests=[], source_partition=2,
         dest_partition=3, bit_width=BITS)
    b.io("Xi", "v.xi", source="add18", dests=[], source_partition=2,
         dest_partition=4, bit_width=BITS)

    # ---- P3 ----------------------------------------------------------
    b.op("add8", "add", 3, inputs=["Xe", "Xb"], bit_width=BITS)
    b.op("add9", "add", 3, inputs=["add8", "Xg"], bit_width=BITS)
    b.op("mul3", "mul", 3, inputs=["add9"], bit_width=BITS)
    b.op("add19", "add", 3, inputs=["add8", "mul3"], bit_width=BITS)
    b.op("mul7", "mul", 3, inputs=["add19"], bit_width=BITS)
    b.op("add11", "add", 3, inputs=["Xk", "Xb"], bit_width=BITS)
    b.op("add10", "add", 3, inputs=["mul7", "add11"], bit_width=BITS)
    b.io("Xh", "v.xh", source="add9", dests=[], source_partition=3,
         dest_partition=4, bit_width=BITS)
    b.io("Xc", "v.xc", source="add11", dests=[], source_partition=3,
         dest_partition=4, bit_width=BITS)
    b.io("X13", "v.x13", source="add10", dests=[], source_partition=3,
         dest_partition=1, bit_width=BITS)
    b.edge("X13", "add3")

    # ---- P4 ----------------------------------------------------------
    b.op("add12", "add", 4, inputs=["Xh", "Xc"], bit_width=BITS)
    b.op("mul4", "mul", 4, inputs=["add12"], bit_width=BITS)
    b.op("add13", "add", 4, inputs=["Xc", "mul4"], bit_width=BITS)
    b.op("add14", "add", 4, inputs=["Xh", "Xi"], bit_width=BITS)
    b.op("add22", "add", 4, inputs=["add13", "Xi"], bit_width=BITS)
    b.op("add23", "add", 4, inputs=["add22", "add14"],
         bit_width=BITS)
    b.io("Xj", "v.xj", source="mul4", dests=[], source_partition=4,
         dest_partition=5, bit_width=BITS)
    b.io("Xd", "v.xd", source="add14", dests=[], source_partition=4,
         dest_partition=5, bit_width=BITS)
    b.io("X26", "v.x26", source="add23", dests=[], source_partition=4,
         dest_partition=2, bit_width=BITS)
    b.edge("X26", "add6")

    # ---- P5 ----------------------------------------------------------
    b.op("add20", "add", 5, inputs=["Xj", "Xd"], bit_width=BITS)
    b.op("mul5", "mul", 5, inputs=["add20"], bit_width=BITS)
    b.op("add21", "add", 5, inputs=["mul5", "Xd"], bit_width=BITS)
    b.op("add24", "add", 5, inputs=["add20", "Xd"], bit_width=BITS)
    b.op("mul8", "mul", 5, inputs=["add24"], bit_width=BITS)
    b.op("add25", "add", 5, inputs=["mul8", "add24"], bit_width=BITS)
    b.op("add26", "add", 5, inputs=["add21", "add25"], bit_width=BITS)
    b.io("Op", "v.out", source="add26", dests=[], source_partition=5,
         dest_partition=W, bit_width=BITS)
    b.io("X33", "v.x33", source="add26", dests=[], source_partition=5,
         dest_partition=1, bit_width=BITS)
    b.io("X39", "v.x39", source="add21", dests=[], source_partition=5,
         dest_partition=1, bit_width=BITS)
    b.edge("X33", "add2")
    b.edge("X39", "add15")

    graph = b.build()

    # Recursive max-time edges (Section 7.1): the transfer op sits in
    # the *consuming* instance; the producer of the value may start at
    # most degree*L - c_producer steps after it.
    _make_recursive(graph, "add26", "X33", degree)
    _make_recursive(graph, "add21", "X39", degree)
    _make_recursive(graph, "add10", "X13", degree)
    _make_recursive(graph, "add23", "X26", degree)
    return graph


def _make_recursive(graph: Cdfg, producer: str, io_name: str,
                    degree: int) -> None:
    """Turn the plain producer -> transfer edge into a recursive edge."""
    from repro.cdfg.transform import _remove_edge

    for edge in graph.in_edges(io_name):
        if edge.src == producer and edge.degree == 0:
            _remove_edge(graph, edge)
            graph.add_edge(producer, io_name, degree)
            return
    raise ValueError(f"no plain edge {producer!r} -> {io_name!r}")
