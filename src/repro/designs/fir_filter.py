"""16-tap FIR filter: an extra DSP workload beyond the dissertation.

The thesis motivates multi-chip synthesis with DSP designs too large
for one chip; the AR and elliptic filters are its two evaluations.
This transposed-form FIR adds a third, structurally different workload:
a long accumulation chain with per-tap recursive storage edges
(``z^-1`` delays become degree-1 recursive edges), partitioned into a
chip chain — four taps per chip.

In transposed form every tap computes ``s_i = x * c_i + s_{i+1}[n-1]``:
the products are embarrassingly parallel, the accumulations couple
neighbouring taps across instances, and the chip cuts turn the
inter-tap carries into interchip transfers — heavy pin traffic relative
to compute, the regime where pin-constrained synthesis matters.
"""

from __future__ import annotations

from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.graph import Cdfg
from repro.partition.model import ChipSpec, Partitioning, OUTSIDE_WORLD

#: Pin budgets for the 4-chip FIR (16-bit samples everywhere).
FIR_PINS = Partitioning({
    OUTSIDE_WORLD: ChipSpec(96),
    1: ChipSpec(96),
    2: ChipSpec(96),
    3: ChipSpec(96),
    4: ChipSpec(96),
})


def fir_design(taps: int = 16, chips: int = 4,
               degree: int = 1) -> Cdfg:
    """Build a transposed FIR with ``taps`` taps over ``chips`` chips.

    ``degree`` sets the recursion degree of the delay elements
    (``degree > 1`` models interleaved streams, as the dissertation
    does for the elliptic filter).
    """
    if taps % chips:
        raise ValueError("taps must divide evenly across chips")
    per_chip = taps // chips
    b = CdfgBuilder(f"fir{taps}")
    W = OUTSIDE_WORLD
    BITS = 16

    # The input sample fans out to every chip (one value, `chips`
    # transfers — a stress test for shared output pins and bus slots).
    src = b.const("src.x", partition=W, bit_width=BITS)
    x_in = {}
    for chip in range(1, chips + 1):
        x_in[chip] = b.io(f"Xin{chip}", "v.x", source=src, dests=[],
                          source_partition=W, dest_partition=chip,
                          bit_width=BITS)

    # Taps are numbered from the output end (tap 0 produces y).
    # Chip c owns taps [ (c-1)*per_chip, c*per_chip ).
    carry_from_next = None  # transfer carrying s_{i+1} into this chip
    prev_sum = None         # s_{i+1} within the current chip
    for tap in reversed(range(taps)):
        chip = tap // per_chip + 1
        mul = b.op(f"m{tap}", "mul", chip,
                   inputs=[x_in[chip]], bit_width=BITS)
        inputs = [mul]
        if prev_sum is not None:
            inputs.append(prev_sum)
        acc = b.op(f"s{tap}", "add", chip, inputs=inputs,
                   bit_width=BITS)
        if prev_sum is not None:
            # The delay element between taps: s_{i+1} is consumed one
            # instance later -> rewrite that edge as recursive.
            _set_degree(b.build(), prev_sum, acc, degree)
        # Crossing into the next chip (towards the output)?
        if tap % per_chip == 0 and tap != 0:
            transfer = b.io(f"C{tap}", f"v.c{tap}", source=acc,
                            dests=[], source_partition=chip,
                            dest_partition=chip - 1, bit_width=BITS)
            prev_sum = transfer
        else:
            prev_sum = acc
    b.io("Y", "v.y", source=prev_sum, dests=[], source_partition=1,
         dest_partition=W, bit_width=BITS)
    return b.build()


def _set_degree(graph: Cdfg, src: str, dst: str, degree: int) -> None:
    """Make the src -> dst edge recursive with the given degree."""
    if degree <= 0:
        return
    from repro.cdfg.transform import _remove_edge

    for edge in graph.in_edges(dst):
        if edge.src == src and edge.degree == 0:
            _remove_edge(graph, edge)
            graph.add_edge(src, dst, degree)
            return
    raise ValueError(f"no plain edge {src!r} -> {dst!r}")
