"""AR lattice filter benchmark (Kung 1984) in two partitionings.

Operation profile: 16 multiplications + 12 additions, all values 8 bits
wide in the simple partitioning (Section 3.4); the general partitioning
(Figure 4.7) mixes widths (a few 12- and 16-bit values), which is what
exercises port-width allocation in Chapter 4.

Simple partitioning (Figure 3.5): four chips;

* P1 and P2: 10 input operations, 2 output operations, (4*, 4+) each;
* P3 and P4: 6 input operations, 2 output operations, (4*, 2+) each;
* driver relation P4 -> {P1, P2} (fan-out star), {P1, P2} -> P3
  (fan-in star) — simple per Definition 3.2.

Timing (Section 3.4): 250 ns stage, 10 ns I/O, 30 ns adders, 210 ns
multipliers, chaining allowed, minimum functional units, inputs every
2 cycles (initiation rate 2).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.graph import Cdfg
from repro.partition.model import ChipSpec, Partitioning, OUTSIDE_WORLD

#: Pin budgets of the simple-partition experiment (Section 3.4): two
#: chips with 48 data pins, two with 32; the system (pseudo partition)
#: budget covers 26 inputs + 2 outputs at initiation rate 2.
AR_SIMPLE_PINS = Partitioning({
    OUTSIDE_WORLD: ChipSpec(120),
    1: ChipSpec(48),
    2: ChipSpec(48),
    3: ChipSpec(32),
    4: ChipSpec(32),
})

#: Pin budgets of the general-partition experiments with unidirectional
#: ports (Table 4.1) and with bidirectional ports (Table 4.9).
AR_GENERAL_PINS_UNIDIR = Partitioning({
    OUTSIDE_WORLD: ChipSpec(120),
    1: ChipSpec(135),
    2: ChipSpec(95),
    3: ChipSpec(95),
})
AR_GENERAL_PINS_BIDIR = Partitioning({
    OUTSIDE_WORLD: ChipSpec(110, bidirectional=True),
    1: ChipSpec(100, bidirectional=True),
    2: ChipSpec(90, bidirectional=True),
    3: ChipSpec(90, bidirectional=True),
})


def ar_simple_design() -> Cdfg:
    """The simple-partition AR filter of Figure 3.5 (reconstruction)."""
    b = CdfgBuilder("ar-simple")
    W = OUTSIDE_WORLD

    # ---- P4: 6 external inputs; values v5 and v6 each fan out to
    # both P1 and P2, so P4's single 8-bit output bundle serves all
    # four transfers across the two control-step groups (the Section
    # 3.4 discussion of X5/X6 sharing P4's one output-pin group).
    for k in range(1, 7):
        b.io(f"In{k}", f"p{k}", source=b.const(f"src.p{k}", partition=W),
             dests=[], source_partition=W, dest_partition=4)
    b.op("m41", "mul", 4, inputs=["In1", "In2"])
    b.op("m42", "mul", 4, inputs=["In3", "In4"])
    b.op("m43", "mul", 4, inputs=["In5", "In6"])
    b.op("m44", "mul", 4, inputs=["In1", "In6"])
    b.op("a41", "add", 4, inputs=["m41", "m42"])
    b.op("a42", "add", 4, inputs=["m43", "m44"])
    b.io("X5", "v5", source="a41", dests=[], source_partition=4,
         dest_partition=1)
    b.io("X5b", "v5", source="a41", dests=[], source_partition=4,
         dest_partition=2)
    b.io("X6", "v6", source="a42", dests=[], source_partition=4,
         dest_partition=1)
    b.io("X6b", "v6", source="a42", dests=[], source_partition=4,
         dest_partition=2)

    # ---- P1: 8 external inputs + v5 + v6, outputs X1, X2 -------------
    for k in range(1, 9):
        b.io(f"I{k}", f"i{k}", source=b.const(f"src.i{k}", partition=W),
             dests=[], source_partition=W, dest_partition=1)
    b.op("m11", "mul", 1, inputs=["I1", "I2"])
    b.op("m12", "mul", 1, inputs=["I3", "I4"])
    b.op("m13", "mul", 1, inputs=["I5", "I6"])
    b.op("m14", "mul", 1, inputs=["I7", "X5"])
    b.op("a11", "add", 1, inputs=["m11", "m12"])
    b.op("a12", "add", 1, inputs=["m13", "m14"])
    b.op("a13", "add", 1, inputs=["a11", "X6"])
    b.op("a14", "add", 1, inputs=["a12", "I8"])
    b.io("X1", "v1", source="a13", dests=[], source_partition=1,
         dest_partition=3)
    b.io("X2", "v2", source="a14", dests=[], source_partition=1,
         dest_partition=3)

    # ---- P2: 8 external inputs + v5 + v6, outputs X3, X4 -------------
    for k in range(1, 9):
        b.io(f"J{k}", f"j{k}", source=b.const(f"src.j{k}", partition=W),
             dests=[], source_partition=W, dest_partition=2)
    b.op("m21", "mul", 2, inputs=["J1", "J2"])
    b.op("m22", "mul", 2, inputs=["J3", "J4"])
    b.op("m23", "mul", 2, inputs=["J5", "J6"])
    b.op("m24", "mul", 2, inputs=["J7", "X5b"])
    b.op("a21", "add", 2, inputs=["m21", "m22"])
    b.op("a22", "add", 2, inputs=["m23", "m24"])
    b.op("a23", "add", 2, inputs=["a21", "X6b"])
    b.op("a24", "add", 2, inputs=["a22", "J8"])
    b.io("X3", "v3", source="a23", dests=[], source_partition=2,
         dest_partition=3)
    b.io("X4", "v4", source="a24", dests=[], source_partition=2,
         dest_partition=3)

    # ---- P3: X1..X4 + 2 external inputs, outputs O1, O2 --------------
    for k in range(1, 3):
        b.io(f"K{k}", f"k{k}", source=b.const(f"src.k{k}", partition=W),
             dests=[], source_partition=W, dest_partition=3)
    b.op("m31", "mul", 3, inputs=["X1", "K1"])
    b.op("m32", "mul", 3, inputs=["X2", "K2"])
    b.op("m33", "mul", 3, inputs=["X3", "K1"])
    b.op("m34", "mul", 3, inputs=["X4", "K2"])
    b.op("a31", "add", 3, inputs=["m31", "m32"])
    b.op("a32", "add", 3, inputs=["m33", "m34"])
    b.io("O1", "out1", source="a31", dests=[], source_partition=3,
         dest_partition=W)
    b.io("O2", "out2", source="a32", dests=[], source_partition=3,
         dest_partition=W)
    return b.build()


def ar_stacked_design(copies: int = 2) -> Cdfg:
    """``copies`` independent AR filter instances on one chip set.

    Every copy re-creates the Figure 3.5 structure with its node and
    value names prefixed ``c<i>.``; all copies share the same four
    chips (and the outside world), so the pin ILP couples them while
    the dataflow does not.  With :func:`ar_stacked_pins` this scales
    the pin-allocation tableau roughly linearly in ``copies`` without
    changing the per-copy schedule structure — the workload profile of
    the warm-start benchmarks, where the ILP share of a solve should
    dominate the scheduler share.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    b = CdfgBuilder(f"ar-stacked-{copies}")
    W = OUTSIDE_WORLD
    for c in range(copies):
        p = f"c{c}."
        for k in range(1, 7):
            b.io(f"{p}In{k}", f"{p}p{k}",
                 source=b.const(f"{p}src.p{k}", partition=W),
                 dests=[], source_partition=W, dest_partition=4)
        b.op(f"{p}m41", "mul", 4, inputs=[f"{p}In1", f"{p}In2"])
        b.op(f"{p}m42", "mul", 4, inputs=[f"{p}In3", f"{p}In4"])
        b.op(f"{p}m43", "mul", 4, inputs=[f"{p}In5", f"{p}In6"])
        b.op(f"{p}m44", "mul", 4, inputs=[f"{p}In1", f"{p}In6"])
        b.op(f"{p}a41", "add", 4, inputs=[f"{p}m41", f"{p}m42"])
        b.op(f"{p}a42", "add", 4, inputs=[f"{p}m43", f"{p}m44"])
        b.io(f"{p}X5", f"{p}v5", source=f"{p}a41", dests=[],
             source_partition=4, dest_partition=1)
        b.io(f"{p}X5b", f"{p}v5", source=f"{p}a41", dests=[],
             source_partition=4, dest_partition=2)
        b.io(f"{p}X6", f"{p}v6", source=f"{p}a42", dests=[],
             source_partition=4, dest_partition=1)
        b.io(f"{p}X6b", f"{p}v6", source=f"{p}a42", dests=[],
             source_partition=4, dest_partition=2)
        for k in range(1, 9):
            b.io(f"{p}I{k}", f"{p}i{k}",
                 source=b.const(f"{p}src.i{k}", partition=W),
                 dests=[], source_partition=W, dest_partition=1)
        b.op(f"{p}m11", "mul", 1, inputs=[f"{p}I1", f"{p}I2"])
        b.op(f"{p}m12", "mul", 1, inputs=[f"{p}I3", f"{p}I4"])
        b.op(f"{p}m13", "mul", 1, inputs=[f"{p}I5", f"{p}I6"])
        b.op(f"{p}m14", "mul", 1, inputs=[f"{p}I7", f"{p}X5"])
        b.op(f"{p}a11", "add", 1, inputs=[f"{p}m11", f"{p}m12"])
        b.op(f"{p}a12", "add", 1, inputs=[f"{p}m13", f"{p}m14"])
        b.op(f"{p}a13", "add", 1, inputs=[f"{p}a11", f"{p}X6"])
        b.op(f"{p}a14", "add", 1, inputs=[f"{p}a12", f"{p}I8"])
        b.io(f"{p}X1", f"{p}v1", source=f"{p}a13", dests=[],
             source_partition=1, dest_partition=3)
        b.io(f"{p}X2", f"{p}v2", source=f"{p}a14", dests=[],
             source_partition=1, dest_partition=3)
        for k in range(1, 9):
            b.io(f"{p}J{k}", f"{p}j{k}",
                 source=b.const(f"{p}src.j{k}", partition=W),
                 dests=[], source_partition=W, dest_partition=2)
        b.op(f"{p}m21", "mul", 2, inputs=[f"{p}J1", f"{p}J2"])
        b.op(f"{p}m22", "mul", 2, inputs=[f"{p}J3", f"{p}J4"])
        b.op(f"{p}m23", "mul", 2, inputs=[f"{p}J5", f"{p}J6"])
        b.op(f"{p}m24", "mul", 2, inputs=[f"{p}J7", f"{p}X5b"])
        b.op(f"{p}a21", "add", 2, inputs=[f"{p}m21", f"{p}m22"])
        b.op(f"{p}a22", "add", 2, inputs=[f"{p}m23", f"{p}m24"])
        b.op(f"{p}a23", "add", 2, inputs=[f"{p}a21", f"{p}X6b"])
        b.op(f"{p}a24", "add", 2, inputs=[f"{p}a22", f"{p}J8"])
        b.io(f"{p}X3", f"{p}v3", source=f"{p}a23", dests=[],
             source_partition=2, dest_partition=3)
        b.io(f"{p}X4", f"{p}v4", source=f"{p}a24", dests=[],
             source_partition=2, dest_partition=3)
        for k in range(1, 3):
            b.io(f"{p}K{k}", f"{p}k{k}",
                 source=b.const(f"{p}src.k{k}", partition=W),
                 dests=[], source_partition=W, dest_partition=3)
        b.op(f"{p}m31", "mul", 3, inputs=[f"{p}X1", f"{p}K1"])
        b.op(f"{p}m32", "mul", 3, inputs=[f"{p}X2", f"{p}K2"])
        b.op(f"{p}m33", "mul", 3, inputs=[f"{p}X3", f"{p}K1"])
        b.op(f"{p}m34", "mul", 3, inputs=[f"{p}X4", f"{p}K2"])
        b.op(f"{p}a31", "add", 3, inputs=[f"{p}m31", f"{p}m32"])
        b.op(f"{p}a32", "add", 3, inputs=[f"{p}m33", f"{p}m34"])
        b.io(f"{p}O1", f"{p}out1", source=f"{p}a31", dests=[],
             source_partition=3, dest_partition=W)
        b.io(f"{p}O2", f"{p}out2", source=f"{p}a32", dests=[],
             source_partition=3, dest_partition=W)
    return b.build()


def ar_stacked_pins(copies: int = 2, scale: float = 1.0) -> Partitioning:
    """Pin budgets for :func:`ar_stacked_design`: the Section 3.4
    budgets times ``copies`` (the copies share chips and their traffic
    adds) times ``scale``."""

    def s(base: int) -> int:
        return int(base * copies * scale)

    return Partitioning({
        OUTSIDE_WORLD: ChipSpec(s(120)),
        1: ChipSpec(s(48)),
        2: ChipSpec(s(48)),
        3: ChipSpec(s(32)),
        4: ChipSpec(s(32)),
    })


def ar_general_design() -> Cdfg:
    """The general-partition AR filter of Figure 4.7 (reconstruction).

    Three chips plus the outside world.  26 external input transfers
    (``I1``-``I9``, ``Ia``-``Iq``), six interchip transfers
    (``X1``-``X6``), two outputs.  Widths: ``I1``-``I4`` are 12 bits,
    ``X1``/``X2`` and ``O1``/``O2`` are 16 bits, the rest are 8 bits —
    the "variety of bit widths" Section 4.4.1 assumes.

    Driver relation: P1 -> {P2, P3}, P2 -> {P3}; P3 has two drivers, so
    the partitioning is general (not simple).
    """
    b = CdfgBuilder("ar-general")
    W = OUTSIDE_WORLD

    def ext(name: str, partition: int, bits: int = 8) -> str:
        return b.io(name, f"v.{name}",
                    source=b.const(f"src.{name}", partition=W),
                    dests=[], source_partition=W,
                    dest_partition=partition, bit_width=bits)

    # ---- P1: 12 external inputs (I1..I9, Ia..Ic); 6 muls, 4 adds ----
    for k in "123456789":
        ext(f"I{k}", 1, bits=12 if k in "1234" else 8)
    for k in "abc":
        ext(f"I{k}", 1)
    b.op("m11", "mul", 1, inputs=["I1", "I2"], bit_width=16)
    b.op("m12", "mul", 1, inputs=["I3", "I4"], bit_width=16)
    b.op("m13", "mul", 1, inputs=["I5", "I6"])
    b.op("m14", "mul", 1, inputs=["I7", "I8"])
    b.op("m15", "mul", 1, inputs=["I9", "Ia"])
    b.op("m16", "mul", 1, inputs=["Ib", "Ic"])
    b.op("a11", "add", 1, inputs=["m11", "m12"], bit_width=16)
    b.op("a12", "add", 1, inputs=["m13", "m14"])
    b.op("a13", "add", 1, inputs=["m15", "m16"])
    b.op("a14", "add", 1, inputs=["a12", "a13"])
    b.io("X1", "v.x1", source="a11", dests=[], source_partition=1,
         dest_partition=2, bit_width=16)
    b.io("X2", "v.x2", source="a14", dests=[], source_partition=1,
         dest_partition=2, bit_width=16)
    b.io("X3", "v.x3", source="a12", dests=[], source_partition=1,
         dest_partition=3)
    b.io("X4", "v.x4", source="a13", dests=[], source_partition=1,
         dest_partition=3)

    # ---- P2: 8 external inputs (Id..Ik); 5 muls, 4 adds -------------
    for k in "defghijk":
        ext(f"I{k}", 2)
    b.op("m21", "mul", 2, inputs=["X1", "Id"], bit_width=16)
    b.op("m22", "mul", 2, inputs=["X2", "Ie"], bit_width=16)
    b.op("m23", "mul", 2, inputs=["If", "Ig"])
    b.op("m24", "mul", 2, inputs=["Ih", "Ii"])
    b.op("m25", "mul", 2, inputs=["Ij", "Ik"])
    b.op("a21", "add", 2, inputs=["m21", "m22"], bit_width=16)
    b.op("a22", "add", 2, inputs=["m23", "m24"])
    b.op("a23", "add", 2, inputs=["m25", "a22"])
    b.op("a24", "add", 2, inputs=["a21", "a23"], bit_width=16)
    b.io("X5", "v.x5", source="a23", dests=[], source_partition=2,
         dest_partition=3)
    b.io("X6", "v.x6", source="a24", dests=[], source_partition=2,
         dest_partition=3, bit_width=16)

    # ---- P3: 6 external inputs (Il..Iq); 5 muls, 4 adds; O1, O2 -----
    for k in "lmnopq":
        ext(f"I{k}", 3)
    b.op("m31", "mul", 3, inputs=["X3", "Il"])
    b.op("m32", "mul", 3, inputs=["X4", "Im"])
    b.op("m33", "mul", 3, inputs=["X5", "In"])
    b.op("m34", "mul", 3, inputs=["X6", "Io"], bit_width=16)
    b.op("m35", "mul", 3, inputs=["Ip", "Iq"])
    b.op("a31", "add", 3, inputs=["m31", "m32"])
    b.op("a32", "add", 3, inputs=["m33", "m35"])
    b.op("a33", "add", 3, inputs=["a31", "a32"], bit_width=16)
    b.op("a34", "add", 3, inputs=["m34", "a33"], bit_width=16)
    b.io("O1", "v.o1", source="a33", dests=[], source_partition=3,
         dest_partition=W, bit_width=16)
    b.io("O2", "v.o2", source="a34", dests=[], source_partition=3,
         dest_partition=W, bit_width=16)
    return b.build()
