"""8-point DCT: the third named kernel of the assurance corpus.

CHStone/MachSuite-style named workloads make assurance claims
recognizable; alongside the dissertation's elliptic wave filter and
the transposed FIR, this 8-point DCT-II adds the canonical *feed-
forward* DSP shape — no recursive edges at all, just three butterfly
stages with rotation blocks.  The reconstruction preserves Loeffler's
published operation profile (29 additions + 11 multiplications for an
8-point DCT) and its stage structure: an input butterfly stage, an
even half (two more butterfly levels plus one 3-multiplier rotation),
and an odd half (two 3-multiplier rotations, a butterfly level, and
the final sqrt(2) scalings).

The partition cuts follow the stages: chip 1 owns the input
butterflies, chip 2 the even half, chip 3 the odd half.  Every stage-1
result crosses a chip boundary, so the design is transfer-heavy
relative to compute — like the FIR, a pin-pressure workload — while
its wide input fan-in (eight external samples into one chip) stresses
the *input* pin budget instead of the inter-tap carries.
"""

from __future__ import annotations

from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.graph import Cdfg
from repro.partition.model import ChipSpec, Partitioning, OUTSIDE_WORLD

#: Pin budgets for the 3-chip DCT (8-bit samples; chip 1 takes the
#: eight-sample input burst, chips 2/3 the four-value stage crossings
#: plus four external outputs each).
DCT_PINS = Partitioning({
    OUTSIDE_WORLD: ChipSpec(128),
    1: ChipSpec(128),
    2: ChipSpec(96),
    3: ChipSpec(96),
})


def dct_design(bit_width: int = 8) -> Cdfg:
    """Build the 8-point DCT over 3 chips (29 adds, 11 muls).

    Subtractions are modelled as ``add`` operations — the module
    library times both on the adder, and the checker only sees the
    dataflow shape, so the published add/mul profile is what matters.
    """
    b = CdfgBuilder("dct8")
    W = OUTSIDE_WORLD
    BITS = bit_width

    # Eight external samples land on chip 1.
    x = []
    for i in range(8):
        src = b.const(f"src.x{i}", partition=W, bit_width=BITS)
        x.append(b.io(f"Xin{i}", f"v.x{i}", source=src, dests=[],
                      source_partition=W, dest_partition=1,
                      bit_width=BITS))

    # Stage 1 (chip 1): input butterflies a_i = x_i + x_{7-i},
    # b_i = x_i - x_{7-i}.  8 adds.
    a = [b.op(f"a{i}", "add", 1, inputs=[x[i], x[7 - i]],
              bit_width=BITS) for i in range(4)]
    d = [b.op(f"b{i}", "add", 1, inputs=[x[i], x[7 - i]],
              bit_width=BITS) for i in range(4)]

    # Even half crosses to chip 2, odd half to chip 3.
    a2 = [b.io(f"A{i}", f"v.a{i}", source=a[i], dests=[],
               source_partition=1, dest_partition=2,
               bit_width=BITS) for i in range(4)]
    d3 = [b.io(f"B{i}", f"v.b{i}", source=d[i], dests=[],
               source_partition=1, dest_partition=3,
               bit_width=BITS) for i in range(4)]

    # Even half (chip 2): one more butterfly level (4 adds), the
    # y0/y4 butterfly (2 adds), and a 3-multiplier rotation for
    # y2/y6 (1 add + 3 muls + 2 adds).  9 adds + 3 muls.
    c0 = b.op("c0", "add", 2, inputs=[a2[0], a2[3]], bit_width=BITS)
    c1 = b.op("c1", "add", 2, inputs=[a2[1], a2[2]], bit_width=BITS)
    c2 = b.op("c2", "add", 2, inputs=[a2[1], a2[2]], bit_width=BITS)
    c3 = b.op("c3", "add", 2, inputs=[a2[0], a2[3]], bit_width=BITS)
    y0 = b.op("y0", "add", 2, inputs=[c0, c1], bit_width=BITS)
    y4 = b.op("y4", "add", 2, inputs=[c0, c1], bit_width=BITS)
    t26 = b.op("t26", "add", 2, inputs=[c2, c3], bit_width=BITS)
    m_e = [b.op("me0", "mul", 2,
                inputs=[t26, b.const("k.c6", partition=2,
                                     bit_width=BITS)],
                bit_width=BITS),
           b.op("me1", "mul", 2,
                inputs=[c2, b.const("k.c2a", partition=2,
                                    bit_width=BITS)],
                bit_width=BITS),
           b.op("me2", "mul", 2,
                inputs=[c3, b.const("k.c2b", partition=2,
                                    bit_width=BITS)],
                bit_width=BITS)]
    y2 = b.op("y2", "add", 2, inputs=[m_e[0], m_e[1]], bit_width=BITS)
    y6 = b.op("y6", "add", 2, inputs=[m_e[0], m_e[2]], bit_width=BITS)

    # Odd half (chip 3): two 3-multiplier rotations (each 1 add +
    # 3 muls + 2 adds), a butterfly level (4 adds), two sqrt(2)
    # scalings (2 muls), and the final y1/y7 combine (2 adds).
    # 12 adds + 8 muls.
    def rotation(tag: str, u: str, v: str):
        t = b.op(f"t{tag}", "add", 3, inputs=[u, v], bit_width=BITS)
        shared = b.op(f"m{tag}s", "mul", 3,
                      inputs=[t, b.const(f"k.{tag}s", partition=3,
                                         bit_width=BITS)],
                      bit_width=BITS)
        mu = b.op(f"m{tag}u", "mul", 3,
                  inputs=[u, b.const(f"k.{tag}u", partition=3,
                                     bit_width=BITS)],
                  bit_width=BITS)
        mv = b.op(f"m{tag}v", "mul", 3,
                  inputs=[v, b.const(f"k.{tag}v", partition=3,
                                     bit_width=BITS)],
                  bit_width=BITS)
        lo = b.op(f"r{tag}l", "add", 3, inputs=[shared, mu],
                  bit_width=BITS)
        hi = b.op(f"r{tag}h", "add", 3, inputs=[shared, mv],
                  bit_width=BITS)
        return lo, hi

    o0, o3 = rotation("03", d3[0], d3[3])
    o1, o2 = rotation("12", d3[1], d3[2])
    z0 = b.op("z0", "add", 3, inputs=[o0, o1], bit_width=BITS)
    z1 = b.op("z1", "add", 3, inputs=[o0, o1], bit_width=BITS)
    z2 = b.op("z2", "add", 3, inputs=[o2, o3], bit_width=BITS)
    z3 = b.op("z3", "add", 3, inputs=[o2, o3], bit_width=BITS)
    s1 = b.op("s1", "mul", 3,
              inputs=[z1, b.const("k.r2a", partition=3,
                                  bit_width=BITS)],
              bit_width=BITS)
    s2 = b.op("s2", "mul", 3,
              inputs=[z2, b.const("k.r2b", partition=3,
                                  bit_width=BITS)],
              bit_width=BITS)
    y1 = b.op("y1", "add", 3, inputs=[z0, s1], bit_width=BITS)
    y7 = b.op("y7", "add", 3, inputs=[z3, s2], bit_width=BITS)

    # Outputs leave from their stage's chip: even coefficients off
    # chip 2, odd ones off chip 3.
    for name, node, chip in (("Y0", y0, 2), ("Y2", y2, 2),
                             ("Y4", y4, 2), ("Y6", y6, 2),
                             ("Y1", y1, 3), ("Y3", s1, 3),
                             ("Y5", s2, 3), ("Y7", y7, 3)):
        b.io(name, f"v.{name.lower()}", source=node, dests=[],
             source_partition=chip, dest_partition=W, bit_width=BITS)
    return b.build()
