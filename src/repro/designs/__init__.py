"""Benchmark designs reconstructed from the dissertation's figures.

The exact netlists exist only as figures in the original; these
reconstructions preserve the published operation profile (AR lattice
filter: 16 multiplications + 12 additions; fifth-order elliptic wave
filter: 26 additions + 8 multiplications), the partition I/O statistics,
the bit-width mix, and the pipelining structure (degree-4 data-recursive
feedback for the elliptic filter).  See DESIGN.md §3 for the
substitution rationale.
"""

from repro.designs.ar_filter import (
    ar_simple_design,
    ar_general_design,
    ar_stacked_design,
    ar_stacked_pins,
    AR_SIMPLE_PINS,
    AR_GENERAL_PINS_UNIDIR,
    AR_GENERAL_PINS_BIDIR,
)
from repro.designs.elliptic import (
    elliptic_resources,
    elliptic_design,
    ELLIPTIC_PINS_UNIDIR,
    ELLIPTIC_PINS_BIDIR,
)
from repro.designs.dct import dct_design, DCT_PINS
from repro.designs.fir_filter import fir_design, FIR_PINS
from repro.designs.random_designs import random_partitioned_design

__all__ = [
    "ar_simple_design",
    "ar_general_design",
    "ar_stacked_design",
    "ar_stacked_pins",
    "AR_SIMPLE_PINS",
    "AR_GENERAL_PINS_UNIDIR",
    "AR_GENERAL_PINS_BIDIR",
    "elliptic_design",
    "elliptic_resources",
    "ELLIPTIC_PINS_UNIDIR",
    "ELLIPTIC_PINS_BIDIR",
    "dct_design",
    "DCT_PINS",
    "fir_design",
    "FIR_PINS",
    "random_partitioned_design",
]
