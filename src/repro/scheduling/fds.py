"""Force-directed scheduling for multi-chip pipelined designs (Ch. 5).

Paulin's FDS balances expected resource concurrency across control
steps, folded modulo the initiation rate for pipelined designs.  All
partitions schedule together.  For I/O operations the distribution
graphs of the *output side* (source partition) and the *input side*
(destination partition) are combined, weighted by bit width — the
approximation the dissertation itself notes cannot capture bus usage
exactly (Section 5.1); the subsequent interchip-connection synthesis of
:mod:`repro.core.post_sched` does the pin optimization.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

from repro.cdfg.analysis import (TimingSpec, compute_time_frames,
                                 topological_order, _EPS)
from repro.cdfg.graph import Cdfg, Node
from repro.errors import SchedulingError
from repro.perf import PERF
from repro.robustness.budget import as_token
from repro.scheduling.base import Schedule

#: Distribution-graph bucket: ("fu", partition, op_type) for functional
#: units, ("out", partition)/("in", partition) for pin pressure.
DgKey = Tuple


class ForceDirectedScheduler:
    """Schedule within ``pipe_length`` steps minimizing concurrency."""

    def __init__(self, graph: Cdfg, timing: TimingSpec,
                 initiation_rate: int, pipe_length: int,
                 io_weight_by_bits: bool = True,
                 budget=None) -> None:
        self.graph = graph
        self.timing = timing
        self.L = initiation_rate
        self.pipe_length = pipe_length
        self.io_weight_by_bits = io_weight_by_bits
        #: Cooperative cancellation token, ticked once per force-directed
        #: placement (each pass of the main loop fixes one operation).
        self.budget = as_token(budget)

    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        graph, timing, L = self.graph, self.timing, self.L
        fixed: Dict[str, int] = {}
        movable = [n.name for n in graph.nodes() if not n.is_free()]

        frames = compute_time_frames(graph, timing, self.pipe_length,
                                     initiation_rate=L)
        if not frames.feasible():
            raise SchedulingError(
                f"no feasible frames within pipe length {self.pipe_length}")

        while len(fixed) < len(movable):
            if self.budget is not None:
                self.budget.note_incumbent(
                    solver="fds", fixed=len(fixed), total=len(movable))
                self.budget.tick("fds")
            dgs = self._distribution_graphs(frames, fixed)
            best: Optional[Tuple[float, str, int]] = None
            for name in movable:
                if name in fixed:
                    continue
                lo, hi = frames.frame(name)
                for step in range(lo, hi + 1):
                    force = self._total_force(name, step, frames, dgs,
                                              fixed)
                    key = (force, name, step)
                    if best is None or key < best:
                        best = key
            assert best is not None
            _, chosen, step = best
            fixed[chosen] = step
            PERF.inc("fds.placements")
            frames = compute_time_frames(graph, timing, self.pipe_length,
                                         initiation_rate=L, fixed=fixed)
            if not frames.feasible():
                raise SchedulingError(
                    f"fixing {chosen!r} at step {step} emptied a frame "
                    f"(pipe length {self.pipe_length} too tight)")
        return self._legalize(fixed)

    # ------------------------------------------------------------------
    def _dg_entries(self, node: Node) -> List[Tuple[DgKey, float]]:
        if node.is_io():
            weight = float(node.bit_width) if self.io_weight_by_bits else 1.0
            return [(("out", node.source_partition), weight),
                    (("in", node.dest_partition), weight)]
        if node.is_functional():
            return [(("fu", node.partition, node.op_type), 1.0)]
        return []

    def _occupied_groups(self, node: Node, step: int) -> List[int]:
        cycles = max(1, self.timing.cycles(node))
        return [(step + j) % self.L for j in range(cycles)]

    def _distribution_graphs(self, frames, fixed: Dict[str, int]
                             ) -> Dict[DgKey, List[float]]:
        dgs: Dict[DgKey, List[float]] = {}
        for node in self.graph.nodes():
            entries = self._dg_entries(node)
            if not entries:
                continue
            lo, hi = frames.frame(node.name)
            if node.name in fixed:
                lo = hi = fixed[node.name]
            prob = 1.0 / (hi - lo + 1)
            for key, weight in entries:
                dg = dgs.setdefault(key, [0.0] * self.L)
                for step in range(lo, hi + 1):
                    for group in self._occupied_groups(node, step):
                        dg[group] += prob * weight
        return dgs

    def _probability(self, name: str, frames,
                     fixed: Dict[str, int]) -> Dict[int, float]:
        """Current per-group probability mass of one node."""
        node = self.graph.node(name)
        lo, hi = frames.frame(name)
        if name in fixed:
            lo = hi = fixed[name]
        prob = 1.0 / (hi - lo + 1)
        mass: Dict[int, float] = {}
        for step in range(lo, hi + 1):
            for group in self._occupied_groups(node, step):
                mass[group] = mass.get(group, 0.0) + prob
        return mass

    def _self_force(self, name: str, step: int, frames,
                    dgs, fixed: Dict[str, int]) -> float:
        node = self.graph.node(name)
        old = self._probability(name, frames, fixed)
        new: Dict[int, float] = {}
        for group in self._occupied_groups(node, step):
            new[group] = new.get(group, 0.0) + 1.0
        force = 0.0
        for key, weight in self._dg_entries(node):
            dg = dgs.get(key, [0.0] * self.L)
            for group in set(old) | set(new):
                force += weight * dg[group] * (new.get(group, 0.0)
                                               - old.get(group, 0.0))
        return force

    def _total_force(self, name: str, step: int, frames, dgs,
                     fixed: Dict[str, int]) -> float:
        force = self._self_force(name, step, frames, dgs, fixed)
        # First-order predecessor/successor forces: tightening their
        # frames by the candidate assignment.
        node = self.graph.node(name)
        cycles = max(1, self.timing.cycles(node))
        for edge in self.graph.in_edges(name):
            if edge.is_recursive() or edge.src in fixed:
                continue
            pred = self.graph.node(edge.src)
            if pred.is_free():
                continue
            gap = max(1, self.timing.cycles(pred)) \
                if not self.timing.chaining_allowed() else 0
            force += self._restrict_force(edge.src, None, step - gap,
                                          frames, dgs, fixed)
        for edge in self.graph.out_edges(name):
            if edge.is_recursive() or edge.dst in fixed:
                continue
            succ = self.graph.node(edge.dst)
            if succ.is_free():
                continue
            gap = cycles if not self.timing.chaining_allowed() else 0
            force += self._restrict_force(edge.dst, step + gap, None,
                                          frames, dgs, fixed)
        return force

    def _restrict_force(self, name: str, new_lo: Optional[int],
                        new_hi: Optional[int], frames, dgs,
                        fixed: Dict[str, int]) -> float:
        node = self.graph.node(name)
        lo, hi = frames.frame(name)
        rlo = lo if new_lo is None else max(lo, new_lo)
        rhi = hi if new_hi is None else min(hi, new_hi)
        if rlo > rhi:
            return float("inf")  # would empty the neighbor's frame
        if (rlo, rhi) == (lo, hi):
            return 0.0
        old = self._probability(name, frames, fixed)
        prob = 1.0 / (rhi - rlo + 1)
        new: Dict[int, float] = {}
        for step in range(rlo, rhi + 1):
            for group in self._occupied_groups(node, step):
                new[group] = new.get(group, 0.0) + prob
        force = 0.0
        for key, weight in self._dg_entries(node):
            dg = dgs.get(key, [0.0] * self.L)
            for group in set(old) | set(new):
                force += weight * dg[group] * (new.get(group, 0.0)
                                               - old.get(group, 0.0))
        return force

    # ------------------------------------------------------------------
    def _legalize(self, fixed: Dict[str, int]) -> Schedule:
        """Assign exact ns starts; chained ops may slip to later steps.

        FDS works at step granularity, so chains longer than one clock
        period could be over-packed; the legalizer respects each fixed
        step as a *minimum* and pushes operations later when the data
        arrives late, failing if the pipe length is exceeded.
        """
        schedule = Schedule(self.graph, self.timing, self.L)
        period = self.timing.clock_period
        for name in topological_order(self.graph):
            node = self.graph.node(name)
            if node.is_free():
                continue
            ready = 0.0
            for edge in self.graph.in_edges(name):
                if edge.is_recursive():
                    continue
                src = self.graph.node(edge.src)
                if src.is_free():
                    continue
                ready = max(ready, schedule.finish_ns(edge.src))
            target = fixed[name]
            start = max(ready, target * period)
            if self.timing.must_start_at_boundary(node) \
                    or not self.timing.chaining_allowed():
                start = math.ceil(start / period - _EPS) * period
            else:
                delay = self.timing.delay_ns(node)
                boundary = math.floor(start / period + _EPS) * period
                if start + delay > boundary + period + _EPS:
                    start = boundary + period  # cannot chain; next step
            step = int(math.floor(start / period + _EPS))
            schedule.place(name, step, start)
        if schedule.pipe_length > self.pipe_length:
            raise SchedulingError(
                f"legalized schedule needs {schedule.pipe_length} steps "
                f"(> pipe length {self.pipe_length})")
        problems = [p for p in schedule.verify() if "unscheduled" not in p]
        if problems:
            raise SchedulingError(
                "FDS produced an invalid schedule: " + "; ".join(problems))
        return schedule
