"""Iterative rescheduling with operation postponement.

The dissertation repeatedly notes that its greedy list schedules
improve "by postponing some of the operations as we have done here by
constraining some of the operations and rerun[ning] the program"
(Sections 5.3, 6.3), and names replacing plain list scheduling with a
more advanced technique as future work (Section 8.2).  This module
automates that manual loop:

* :class:`ListScheduler` already accepts ``min_steps`` constraints
  (the "constraining some of the operations" device);
* :func:`schedule_with_postponement` runs rounds of list scheduling;
  when a round dies on a recursive-loop deadline, the operations that
  greedily grabbed resources inside the failing window — ready early,
  no deadline of their own — get pushed behind the loop's traffic and
  the schedule is retried.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.cdfg.analysis import TimingSpec
from repro.cdfg.graph import Cdfg
from repro.errors import SchedulingError
from repro.modules.allocation import ResourceVector
from repro.scheduling.base import Schedule
from repro.scheduling.list_scheduler import (DeadlineMissed, IoHooks,
                                             ListScheduler)


def _competitors(graph: Cdfg, scheduler: ListScheduler,
                 partial: Schedule, failed_op: str,
                 deadline: int) -> List[str]:
    """Operations to blame for a missed loop deadline.

    Blame operations that (a) were scheduled inside the failing window,
    (b) have no deadline of their own (infinite slack), and (c) compete
    for the same scarce things as the loop — the same functional-unit
    class or any communication bus.
    """
    failed = graph.node(failed_op)
    blamed: List[Tuple[int, str]] = []
    for name, step in partial.start_step.items():
        if step > deadline:
            continue
        if scheduler._deadline.get(name, float("inf")) != float("inf"):
            continue  # loop members are victims, not culprits
        node = graph.node(name)
        same_unit = (node.is_functional() and failed.is_functional()
                     and node.partition == failed.partition
                     and node.op_type == failed.op_type)
        is_transfer = node.is_io()
        if same_unit or is_transfer:
            blamed.append((step, name))
    blamed.sort()
    return [name for _step, name in blamed]


def schedule_with_postponement(
        graph: Cdfg,
        timing: TimingSpec,
        initiation_rate: int,
        resources: ResourceVector,
        hooks_factory: Callable[[], Optional[IoHooks]] = lambda: None,
        max_rounds: int = 6,
        push: int = 1,
        budget=None) -> Schedule:
    """Run list scheduling, postponing greedy ops after each failure.

    ``hooks_factory`` must build a *fresh* IoHooks per round (bus
    allocators and pin checkers are stateful).  Raises the final
    round's :class:`SchedulingError` if no round succeeds.  ``budget``
    is handed to each round's :class:`ListScheduler`; the control-step
    counter accumulates across rounds (one shared token).
    """
    min_steps: Dict[str, int] = {}
    last_error: Optional[SchedulingError] = None
    for round_index in range(max_rounds):
        scheduler = ListScheduler(graph, timing, initiation_rate,
                                  resources,
                                  io_hooks=hooks_factory(),
                                  min_steps=dict(min_steps),
                                  budget=budget)
        try:
            return scheduler.run()
        except DeadlineMissed as exc:
            last_error = exc
            culprits = _competitors(graph, scheduler, exc.partial,
                                    exc.failed_op, exc.deadline)
            if not culprits:
                raise
            progressed = False
            for name in culprits:
                was = exc.partial.step(name)
                target = was + push + round_index
                if min_steps.get(name, 0) < target:
                    min_steps[name] = target
                    progressed = True
            if not progressed:
                raise
        except SchedulingError as exc:
            last_error = exc
            raise
    assert last_error is not None
    raise last_error
