"""Schedulers for multi-chip pipelined designs.

All partitions are scheduled *together* (Sections 3.2 and 5.1): I/O
operations couple the chips because the output and input halves of every
transfer must land in the same control step.

* :mod:`repro.scheduling.list_scheduler` — resource-constrained list
  scheduling with pluggable I/O feasibility hooks (the pin-allocation
  checker of Chapter 3 or the bus-availability/reassignment logic of
  Chapter 4), chaining, multi-cycle allocation wheels and
  recursive-edge deadline checks.
* :mod:`repro.scheduling.fds` — force-directed scheduling (Chapter 5)
  minimizing resource concurrency under a pipe-length constraint.
* :mod:`repro.scheduling.heap_list` — heap-driven priority list
  scheduling (the ``heap`` backend).
* :mod:`repro.scheduling.modulo` — pipeline/modulo scheduling at
  ``II = L`` with MII fail-fast and list-scheduler legalization (the
  ``modulo`` backend).
"""

from repro.scheduling.base import Schedule, ResourcePool, measured_resources
from repro.scheduling.constraints import (
    AllocationWheel,
    recursive_edge_bounds,
)
from repro.scheduling.list_scheduler import (
    ListScheduler,
    IoHooks,
    NullIoHooks,
    DeadlineMissed,
)
from repro.scheduling.postpone import schedule_with_postponement
from repro.scheduling.fds import ForceDirectedScheduler
from repro.scheduling.heap_list import HeapListScheduler
from repro.scheduling.modulo import ModuloScheduler, resource_mii

__all__ = [
    "Schedule",
    "ResourcePool",
    "measured_resources",
    "AllocationWheel",
    "recursive_edge_bounds",
    "ListScheduler",
    "IoHooks",
    "NullIoHooks",
    "DeadlineMissed",
    "schedule_with_postponement",
    "ForceDirectedScheduler",
    "HeapListScheduler",
    "ModuloScheduler",
    "resource_mii",
]
