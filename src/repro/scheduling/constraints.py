"""Allocation wheels and recursive-edge timing bounds.

* :class:`AllocationWheel` (Figure 7.10): a non-pipelined multi-cycle
  unit in a pipelined design with initiation rate ``L`` has an
  ``L``-cell circular occupancy pattern; an ``m``-cycle operation
  starting at step ``s`` occupies cells ``s % L .. (s+m-1) % L``
  contiguously (wrapping).  Fragmentation of the wheel can strand
  capacity, which the list scheduler's safety check guards against.
* :func:`recursive_edge_bounds` packages the Section 7.1 maximum time
  constraint ``t_producer - t_consumer < d*L - (c_producer - 1)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cdfg.graph import Cdfg
from repro.cdfg.analysis import TimingSpec
from repro.errors import SchedulingError


class AllocationWheel:
    """Circular occupancy of one non-pipelined multi-cycle unit."""

    def __init__(self, length: int) -> None:
        if length < 1:
            raise SchedulingError("wheel length must be >= 1")
        self.length = length
        self._used = [False] * length

    def cells(self, step: int, cycles: int) -> List[int]:
        if cycles > self.length:
            raise SchedulingError(
                f"a {cycles}-cycle operation cannot fit a wheel of "
                f"length {self.length} (no such pipelined design exists)")
        return [(step + k) % self.length for k in range(cycles)]

    def fits(self, step: int, cycles: int) -> bool:
        return all(not self._used[c] for c in self.cells(step, cycles))

    def occupy(self, step: int, cycles: int) -> None:
        cells = self.cells(step, cycles)
        for c in cells:
            if self._used[c]:
                raise SchedulingError(f"wheel cell {c} double-booked")
        for c in cells:
            self._used[c] = True

    def release(self, step: int, cycles: int) -> None:
        for c in self.cells(step, cycles):
            self._used[c] = False

    def capacity(self, cycles: int) -> int:
        """Max additional ``cycles``-cycle ops this wheel can take.

        Computed over the circular free runs: a free run of length ``r``
        holds ``r // cycles`` operations.
        """
        if cycles > self.length:
            return 0
        if not any(self._used):
            return self.length // cycles
        # Walk the circle starting just after some used cell so runs
        # never wrap.
        start = next(i for i, used in enumerate(self._used) if used)
        total = 0
        run = 0
        for k in range(1, self.length + 1):
            cell = (start + k) % self.length
            if self._used[cell]:
                total += run // cycles
                run = 0
            else:
                run += 1
        total += run // cycles
        return total

    def free_cells(self) -> List[int]:
        return [i for i, used in enumerate(self._used) if not used]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pattern = "".join("#" if u else "." for u in self._used)
        return f"AllocationWheel[{pattern}]"


def recursive_edge_bounds(graph: Cdfg, timing: TimingSpec,
                          initiation_rate: int
                          ) -> List[Tuple[str, str, int]]:
    """(producer, consumer, slack) for every data-recursive edge.

    ``slack`` is the maximum allowed ``t_producer - t_consumer``, i.e.
    ``d*L - c_producer`` in steps: the producer may start at most that
    many steps after the consumer.
    """
    bounds = []
    for edge in graph.recursive_edges():
        c_src = max(1, timing.cycles(graph.node(edge.src)))
        slack = edge.degree * initiation_rate - c_src
        bounds.append((edge.src, edge.dst, slack))
    return bounds


def recursive_deadline(graph: Cdfg, timing: TimingSpec,
                       initiation_rate: int, name: str,
                       consumer_steps: Dict[str, int]) -> Optional[int]:
    """Latest start step of ``name`` imposed by scheduled consumers.

    ``None`` when no scheduled consumer constrains it yet.
    """
    deadline: Optional[int] = None
    for edge in graph.recursive_edges():
        if edge.src != name:
            continue
        consumer = edge.dst
        if consumer not in consumer_steps:
            continue
        c_src = max(1, timing.cycles(graph.node(name)))
        limit = consumer_steps[consumer] + edge.degree * initiation_rate \
            - c_src
        deadline = limit if deadline is None else min(deadline, limit)
    return deadline
