"""Pipeline (modulo) scheduling against the fixed initiation rate.

The initiation rate ``L`` of a multi-chip pipeline *is* an initiation
interval: control steps fold into groups modulo ``L`` and operations
in the same group compete for hardware.  This backend treats
scheduling as classic modulo scheduling at ``II = L``:

1. **MII check** — the resource-minimum initiation interval
   ``max_type(ceil(ops * cycles / units))`` is computed from the
   module vector; if it exceeds ``L`` no schedule exists at this rate
   and the backend fails fast instead of burning the step budget.
2. **Modulo placement** — an iterative-modulo-scheduling pass places
   operations in height order into a modulo reservation table (the
   same :class:`repro.scheduling.base.ResourcePool` the other
   backends place against), scanning the ``L`` candidate offsets from
   each operation's earliest start and evicting lower-priority
   occupants when no offset is free, polyphony-style.  The placement
   loop escalates its lateness horizon on failure — the
   initiation-interval search of a classic modulo scheduler, mapped
   onto the only axis this problem leaves free (the pipe latency).
3. **Legalization** — the placement is handed to a
   :class:`repro.scheduling.list_scheduler.ListScheduler` as
   ``min_steps`` lower bounds, so chaining windows, recursion
   deadlines, allocation-wheel safety, and the I/O hooks (pin
   checker / bus allocator) are enforced by the proven machinery.  If
   the guided run fails — the modulo placement can be too aggressive
   once I/O feasibility enters — the backend retries unguided with
   fresh hooks and records the fallback on the diagnostics trail.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cdfg.analysis import TimingSpec, topological_order, _EPS
from repro.cdfg.graph import Cdfg
from repro.errors import SchedulingError
from repro.modules.allocation import ResourceVector
from repro.robustness.budget import as_token
from repro.scheduling.base import ResourcePool, Schedule, _pipelined
from repro.scheduling.list_scheduler import (ListScheduler,
                                             NullIoHooks)


def resource_mii(graph: Cdfg, timing: TimingSpec,
                 resources: ResourceVector) -> int:
    """Resource-minimum initiation interval of a design.

    For every (partition, op type): ``ceil(ops * cycles / units)``
    cycles of wheel capacity are needed per initiation (pipelined
    units count one cycle per op).  The largest such quotient bounds
    the rate from below; a schedule at ``L < MII`` cannot exist.
    """
    demand: Dict[Tuple[int, str], int] = {}
    for node in graph.functional_nodes():
        cycles = max(1, timing.cycles(node))
        if cycles > 1 and _pipelined(timing, node):
            cycles = 1
        key = (node.partition, node.op_type)
        demand[key] = demand.get(key, 0) + cycles
    mii = 1
    for key, need in demand.items():
        units = resources.get(key, 0)
        if units <= 0:
            raise SchedulingError(
                f"no functional units of type {key[1]!r} on "
                f"partition {key[0]}")
        mii = max(mii, math.ceil(need / units))
    return mii


class ModuloScheduler:
    """One-shot scheduler; construct, then call :meth:`run`.

    ``hooks_factory`` must return fresh :class:`IoHooks` on every
    call — the legalization retry consumes a second instance.  The
    default factory produces permissive hooks (no pin/bus gating).
    """

    #: Eviction budget multiplier of the IMS placement loop.
    PLACEMENT_BUDGET = 8
    #: Lateness-horizon escalations before giving up on guidance.
    MAX_ROUNDS = 3

    def __init__(self,
                 graph: Cdfg,
                 timing: TimingSpec,
                 initiation_rate: int,
                 resources: ResourceVector,
                 hooks_factory: Optional[Callable] = None,
                 budget=None,
                 diagnostics=None) -> None:
        self.graph = graph
        self.timing = timing
        self.L = initiation_rate
        self.resources = dict(resources)
        self.hooks_factory = hooks_factory or NullIoHooks
        self.budget = as_token(budget)
        self.diag = diagnostics
        self.mii = resource_mii(graph, timing, resources)

    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        if self.mii > self.L:
            raise SchedulingError(
                f"initiation rate L={self.L} is below the resource "
                f"MII {self.mii}; no modulo schedule exists at this "
                f"rate")
        guide = self._modulo_place()
        if guide is not None:
            try:
                return ListScheduler(
                    self.graph, self.timing, self.L, self.resources,
                    io_hooks=self.hooks_factory(),
                    min_steps=guide, budget=self.budget).run()
            except SchedulingError:
                if self.diag is not None:
                    self.diag.record("modulo", "legalization_fallback",
                                     guided_ops=len(guide))
        elif self.diag is not None:
            self.diag.record("modulo", "placement_gave_up",
                             mii=self.mii, rate=self.L)
        # Unguided rung: plain list scheduling with fresh hooks keeps
        # the backend total on every design its siblings can solve.
        return ListScheduler(
            self.graph, self.timing, self.L, self.resources,
            io_hooks=self.hooks_factory(), budget=self.budget).run()

    # ------------------------------------------------------------------
    def _earliest_steps(self) -> Dict[str, int]:
        """ASAP start steps over the forward DAG (chain-agnostic, so
        a safe *guide* — the legalizer may only push later)."""
        est: Dict[str, int] = {}
        for name in topological_order(self.graph):
            node = self.graph.node(name)
            start = 0
            for edge in self.graph.in_edges(name):
                if edge.is_recursive():
                    continue
                src = self.graph.node(edge.src)
                gap = 0 if src.is_free() \
                    else max(1, self.timing.cycles(src))
                start = max(start, est[edge.src] + gap)
            est[name] = start
        return est

    def _heights(self) -> Dict[str, float]:
        """Longest ns path to any sink — the IMS placement priority."""
        height: Dict[str, float] = {}
        for name in reversed(topological_order(self.graph)):
            node = self.graph.node(name)
            below = 0.0
            for edge in self.graph.out_edges(name):
                if edge.is_recursive():
                    continue
                below = max(below, height[edge.dst])
            height[name] = below + self.timing.delay_ns(node)
        return height

    # ------------------------------------------------------------------
    def _modulo_place(self) -> Optional[Dict[str, int]]:
        """IMS placement of the functional operations.

        Returns ``{op: step}`` lower bounds for the legalizer, or
        ``None`` when no horizon within :attr:`MAX_ROUNDS` escalations
        admits a full placement.  I/O operations are left unguided —
        their feasibility belongs to the hooks, which the modulo table
        cannot see.
        """
        est = self._earliest_steps()
        height = self._heights()
        ops = [n for n in self.graph.functional_nodes()]
        if not ops:
            return {}
        span = max(est[n.name] for n in ops) + self.L
        for round_no in range(self.MAX_ROUNDS):
            horizon = span * (round_no + 1)
            placed = self._place_round(ops, est, height, horizon)
            if placed is not None:
                if self.diag is not None and round_no:
                    self.diag.record("modulo", "horizon_escalated",
                                     rounds=round_no + 1,
                                     horizon=horizon)
                return placed
        return None

    def _place_round(self, ops, est, height,
                     horizon: int) -> Optional[Dict[str, int]]:
        order = sorted(ops, key=lambda n: (-height[n.name],
                                           est[n.name], n.name))
        time: Dict[str, int] = {}
        worklist: List = list(order)
        iterations = 0
        budget = self.PLACEMENT_BUDGET * len(order) + 8
        while worklist:
            iterations += 1
            if iterations > budget:
                return None
            if self.budget is not None:
                self.budget.tick("list_scheduler")
            node = worklist.pop(0)
            lo = self._dynamic_estart(node, est, time)
            slot = self._free_slot(node, lo, time, horizon)
            if slot is None:
                # Evict the lowest-priority same-type occupants of the
                # target group and take the slot, polyphony-style.
                slot = lo
                victims = self._victims(node, slot, time, height)
                if victims is None:
                    return None
                for victim in victims:
                    del time[victim.name]
                    worklist.append(victim)
            if slot > horizon:
                return None
            time[node.name] = slot
        return time

    def _dynamic_estart(self, node, est, time) -> int:
        """Earliest start honoring already-placed predecessors."""
        lo = est[node.name]
        for edge in self.graph.in_edges(node.name):
            if edge.is_recursive():
                continue
            src = self.graph.node(edge.src)
            if src.is_free() or edge.src not in time:
                continue
            lo = max(lo, time[edge.src]
                     + max(1, self.timing.cycles(src)))
        return lo

    def _free_slot(self, node, lo: int, time,
                   horizon: int) -> Optional[int]:
        """First of the ``L`` candidate offsets with table capacity."""
        pool = self._rebuild_pool(time)
        for offset in range(self.L):
            step = lo + offset
            if step > horizon:
                break
            if pool.can_place(node, step):
                return step
        return None

    def _victims(self, node, step: int, time, height):
        """Same-type occupants of the target group, cheapest first;
        ``None`` when eviction cannot free the slot."""
        group = step % self.L
        key = (node.partition, node.op_type)
        occupants = [self.graph.node(name)
                     for name, s in time.items()
                     if s % self.L == group]
        occupants = [o for o in occupants
                     if (o.partition, o.op_type) == key
                     and height[o.name] <= height[node.name]]
        if not occupants:
            return None
        occupants.sort(key=lambda o: (height[o.name], o.name))
        return occupants[:1]

    def _rebuild_pool(self, time) -> ResourcePool:
        pool = ResourcePool(self.resources, self.timing, self.L)
        for name, step in sorted(time.items(),
                                 key=lambda kv: (kv[1], kv[0])):
            pool.try_place(self.graph.node(name), step)
        return pool
