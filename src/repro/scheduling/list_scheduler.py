"""Resource-constrained pipelined list scheduling (Figure 3.4).

Ready operations are prioritized by criticality (longest path to a sink)
and placed step by step.  Before each I/O operation is placed the
pluggable :class:`IoHooks` decide whether the placement keeps the design
realizable — the Chapter 3 flow plugs in the ILP pin-allocation
feasibility checker, the Chapter 4 flow plugs in communication-bus
availability with dynamic reassignment.  If the hook says no, the I/O
operation is postponed to a later control step, exactly as in the
dissertation's flow chart.

Multi-cycle operations pass the allocation-wheel *safety check* of
Section 7.4: a tentative placement is undone (postponed) if the
fragmentation it causes leaves too little wheel capacity for the
remaining operations of that type.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Protocol, Set, Tuple

from repro.cdfg.analysis import TimingSpec, topological_order, _EPS
from repro.cdfg.graph import Cdfg, Node
from repro.cdfg.ops import IO_KINDS
from repro.errors import SchedulingError
from repro.modules.allocation import ResourceVector
from repro.robustness.budget import as_token
from repro.scheduling.base import ResourcePool, Schedule
from repro.scheduling.constraints import recursive_deadline


class IoHooks(Protocol):
    """Feasibility gate for scheduling I/O operations."""

    def can_schedule(self, node: Node, step: int,
                     schedule: Schedule) -> bool:
        """Whether placing the I/O op in ``step`` keeps the design valid."""

    def commit(self, node: Node, step: int, schedule: Schedule) -> None:
        """Record the placement (called right before Schedule.place)."""


class NullIoHooks:
    """Hooks that accept everything (no pin/bus constraints)."""

    def can_schedule(self, node: Node, step: int,
                     schedule: Schedule) -> bool:
        return True

    def commit(self, node: Node, step: int, schedule: Schedule) -> None:
        return None


class DeadlineMissed(SchedulingError):
    """A recursive max-time deadline was missed; carries diagnostics
    for :mod:`repro.scheduling.postpone`."""

    def __init__(self, message: str, failed_op: str, deadline: int,
                 partial: Schedule) -> None:
        super().__init__(message)
        self.failed_op = failed_op
        self.deadline = deadline
        self.partial = partial


class ListScheduler:
    """One-shot scheduler; construct, then call :meth:`run`."""

    def __init__(self,
                 graph: Cdfg,
                 timing: TimingSpec,
                 initiation_rate: int,
                 resources: ResourceVector,
                 io_hooks: Optional[IoHooks] = None,
                 max_steps: Optional[int] = None,
                 min_steps: Optional[Dict[str, int]] = None,
                 budget=None) -> None:
        self.graph = graph
        self.timing = timing
        self.L = initiation_rate
        self.resources = dict(resources)
        self.min_steps = dict(min_steps or {})
        self.hooks: IoHooks = io_hooks or NullIoHooks()
        self.max_steps = max_steps or self._default_max_steps()
        #: Cooperative cancellation token, ticked once per control step.
        self.budget = as_token(budget)
        self._priority = self._compute_priorities()
        self._deadline = self._compute_deadlines()

    # ------------------------------------------------------------------
    def _default_max_steps(self) -> int:
        worst = 0
        for node in self.graph.nodes():
            worst += max(1, self.timing.cycles(node))
        return worst + 8 * self.L + 8

    def _compute_priorities(self) -> Dict[str, float]:
        """Longest ns path from each node to any sink (critical path)."""
        priority: Dict[str, float] = {}
        for name in reversed(topological_order(self.graph)):
            node = self.graph.node(name)
            below = 0.0
            for edge in self.graph.out_edges(name):
                if edge.is_recursive():
                    continue
                below = max(below, priority[edge.dst])
            priority[name] = below + self.timing.delay_ns(node)
        return priority

    def _compute_deadlines(self) -> Dict[str, float]:
        """Static deadlines from recursive max-time constraints.

        The loop-entry transfer of a recursive value has no forward
        predecessors and is scheduled near step 0, so anchoring it at
        its ASAP step gives the producer a deadline of
        ``asap(io) + d*L - c`` (Section 7.1); propagating deadlines
        backwards through the DAG makes the whole loop chain urgent.
        This is a *priority* heuristic — the hard checks stay in
        :meth:`_recursion_allows`.
        """
        from repro.cdfg.analysis import asap_schedule

        deadline: Dict[str, float] = {name: float("inf")
                                      for name in self.graph.node_names()}
        asap = asap_schedule(self.graph, self.timing)
        for edge in self.graph.recursive_edges():
            producer = edge.src
            consumer_io = edge.dst
            c_src = max(1, self.timing.cycles(self.graph.node(producer)))
            limit = asap[consumer_io] + edge.degree * self.L - c_src
            deadline[producer] = min(deadline[producer], float(limit))
        chain = self.timing.chaining_allowed()
        for name in reversed(topological_order(self.graph)):
            node = self.graph.node(name)
            for edge in self.graph.out_edges(name):
                if edge.is_recursive():
                    continue
                succ = self.graph.node(edge.dst)
                gap = 0 if (chain and self.timing.cycles(node) <= 1
                            and not self.timing.must_start_at_boundary(
                                succ)) \
                    else max(1, self.timing.cycles(node)) \
                    if not node.is_free() else 0
                candidate = deadline[edge.dst] - gap
                if candidate < deadline[name]:
                    deadline[name] = candidate
        return deadline

    def _ready_key(self, name: str):
        """Sort key: earliest deadline first, then critical path."""
        return (self._deadline[name], -self._priority[name], name)

    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        graph = self.graph
        timing = self.timing
        period = timing.clock_period
        schedule = Schedule(graph, timing, self.L)
        pool = ResourcePool(self.resources, timing, self.L)

        remaining_by_type: Dict[Tuple[int, str], int] = {}
        for node in graph.functional_nodes():
            key = (node.partition, node.op_type)
            remaining_by_type[key] = remaining_by_type.get(key, 0) + 1

        pending: Set[str] = {n.name for n in graph.nodes()
                             if not n.is_free()}
        free_nodes: Set[str] = {n.name for n in graph.nodes()
                                if n.is_free()}

        total_ops = len(pending)
        step = 0
        while pending:
            if self.budget is not None:
                self.budget.note_incumbent(
                    solver="list_scheduler", step=step,
                    scheduled=total_ops - len(pending),
                    total=total_ops)
                self.budget.tick("list_scheduler")
            if step > self.max_steps:
                raise SchedulingError(
                    f"could not schedule within {self.max_steps} steps; "
                    f"{len(pending)} operations left "
                    f"(e.g. {sorted(pending)[:4]})")
            # Repeat within the step: a chained placement can make more
            # operations ready in the same step.
            progress = True
            while progress:
                progress = False
                ready = self._ready_ops(pending, free_nodes, schedule, step)
                ready.sort(key=self._ready_key)
                for name in ready:
                    node = graph.node(name)
                    placed = self._try_place(node, step, schedule, pool,
                                             remaining_by_type)
                    if placed:
                        pending.discard(name)
                        progress = True
            self._check_recursive_deadlines(pending, schedule, step)
            step += 1
        return schedule

    # ------------------------------------------------------------------
    def _ready_ops(self, pending: Set[str], free_nodes: Set[str],
                   schedule: Schedule, step: int) -> List[str]:
        """Pending ops whose predecessors allow a start in ``step``."""
        period = self.timing.clock_period
        ready: List[str] = []
        for name in pending:
            if self.min_steps.get(name, 0) > step:
                continue  # postponed by caller constraint (Sec 5.3)
            ok = True
            for edge in self.graph.in_edges(name):
                if edge.is_recursive():
                    continue
                src = edge.src
                if src in free_nodes:
                    if not self._free_ready(src, schedule):
                        ok = False
                        break
                    continue
                if not schedule.is_scheduled(src):
                    ok = False
                    break
                if schedule.finish_ns(src) > (step + 1) * period + _EPS:
                    ok = False
                    break
            if ok:
                ready.append(name)
        return ready

    def _free_ready(self, name: str, schedule: Schedule) -> bool:
        """Free nodes (constants, split/merge) are ready when preds are."""
        for edge in self.graph.in_edges(name):
            if edge.is_recursive():
                continue
            src_node = self.graph.node(edge.src)
            if src_node.is_free():
                if not self._free_ready(edge.src, schedule):
                    return False
            elif not schedule.is_scheduled(edge.src):
                return False
        return True

    def _data_ready_ns(self, name: str, schedule: Schedule) -> float:
        ready = 0.0
        for edge in self.graph.in_edges(name):
            if edge.is_recursive():
                continue
            src_node = self.graph.node(edge.src)
            if src_node.is_free():
                ready = max(ready, self._data_ready_ns(edge.src, schedule))
            else:
                ready = max(ready, schedule.finish_ns(edge.src))
        return ready

    # ------------------------------------------------------------------
    def _try_place(self, node: Node, step: int, schedule: Schedule,
                   pool: ResourcePool,
                   remaining_by_type: Dict[Tuple[int, str], int]) -> bool:
        period = self.timing.clock_period
        ready_ns = self._data_ready_ns(node.name, schedule)
        start_ns = self._start_in_step(node, step, ready_ns)
        if start_ns is None:
            return False

        # Recursive-edge checks (Section 7.1).
        if not self._recursion_allows(node, step, schedule):
            return False

        if node.kind in IO_KINDS:
            if not self._io_step_allowed(step):
                return False
            if not self.hooks.can_schedule(node, step, schedule):
                return False
            self.hooks.commit(node, step, schedule)
            schedule.place(node.name, step, start_ns)
            return True

        # Functional operation: units + allocation-wheel safety.
        cycles = max(1, self.timing.cycles(node))
        if not pool.can_place(node, step):
            return False
        key = (node.partition, node.op_type)
        if cycles > 1:
            if not self._wheel_safe(node, step, pool, remaining_by_type):
                return False
        pool.try_place(node, step)
        remaining_by_type[key] -= 1
        schedule.place(node.name, step, start_ns)
        return True

    def _io_step_allowed(self, step: int) -> bool:
        """Minor-clock gating for transfers (Section 2.2's two-clock
        scheme); timing models without the feature allow every step."""
        probe = getattr(self.timing, "io_step_allowed", None)
        return True if probe is None else probe(step)

    def _start_in_step(self, node: Node, step: int,
                       ready_ns: float) -> Optional[float]:
        """ns start placing ``node`` in ``step``, or None if impossible."""
        period = self.timing.clock_period
        boundary = step * period
        delay = self.timing.delay_ns(node)
        if self.timing.must_start_at_boundary(node) \
                or not self.timing.chaining_allowed():
            if ready_ns > boundary + _EPS:
                return None
            return boundary
        start = max(ready_ns, boundary)
        if start >= (step + 1) * period - _EPS:
            return None
        cycles = max(1, self.timing.cycles(node))
        if cycles > 1:
            # Multi-cycle ops are not chained (Section 7.4).
            if ready_ns > boundary + _EPS:
                return None
            return boundary
        if start + delay > (step + 1) * period + _EPS:
            return None  # would cross the latch boundary; wait a step
        return start

    def _recursion_allows(self, node: Node, step: int,
                          schedule: Schedule) -> bool:
        """Max-time constraints on producers/consumers of recursive edges."""
        # As a producer: must respect deadlines from scheduled consumers.
        deadline = recursive_deadline(self.graph, self.timing, self.L,
                                      node.name, schedule.start_step)
        if deadline is not None and step > deadline:
            return False
        # As a consumer: placing it at `step` gives every unscheduled
        # producer a deadline; refuse if a producer clearly cannot make
        # it (its data-ready step is already past the deadline).
        for edge in self.graph.recursive_edges():
            if edge.dst != node.name:
                continue
            producer = edge.src
            c_src = max(1, self.timing.cycles(self.graph.node(producer)))
            limit = step + edge.degree * self.L - c_src
            if schedule.is_scheduled(producer):
                if schedule.step(producer) > limit:
                    return False
            else:
                earliest = self._earliest_step(producer, schedule)
                if earliest is not None and earliest > limit:
                    return False
        return True

    def _earliest_step(self, name: str,
                       schedule: Schedule) -> Optional[int]:
        """Crude earliest start from *scheduled* predecessors only."""
        period = self.timing.clock_period
        ready = 0.0
        for edge in self.graph.in_edges(name):
            if edge.is_recursive():
                continue
            if schedule.is_scheduled(edge.src):
                ready = max(ready, schedule.finish_ns(edge.src))
        return int(math.floor(ready / period + _EPS))

    def _wheel_safe(self, node: Node, step: int, pool: ResourcePool,
                    remaining_by_type: Dict[Tuple[int, str], int]) -> bool:
        """Fragmentation safety check for multi-cycle units (Section 7.4)."""
        key = (node.partition, node.op_type)
        capacity = pool.capacity_after_place(node, step)
        if capacity is None:
            return False
        still_needed = remaining_by_type[key] - 1
        return capacity >= still_needed

    def _check_recursive_deadlines(self, pending: Set[str],
                                   schedule: Schedule, step: int) -> None:
        """Fail fast when a pending producer already missed a deadline."""
        for name in pending:
            deadline = recursive_deadline(self.graph, self.timing, self.L,
                                          name, schedule.start_step)
            if deadline is not None and step >= deadline:
                # It had to be placed by `deadline`; the greedy choice
                # earlier made the schedule infeasible (Section 4.4.2
                # observes exactly this failure mode at tight rates).
                raise DeadlineMissed(
                    f"recursive max-time deadline missed for {name!r} "
                    f"(deadline step {deadline}, now past step {step})",
                    failed_op=name, deadline=deadline, partial=schedule)
