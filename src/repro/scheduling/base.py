"""Schedule representation and functional-resource tracking.

A :class:`Schedule` records, for every node, the control step in which
it starts and the exact nanosecond start within that step (for chained
operations).  Control steps fold into *groups* modulo the initiation
rate ``L``: operations in the same group execute overlapped across
pipeline instances and therefore compete for hardware (Section 2.3.1).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.cdfg.analysis import TimingSpec, _EPS
from repro.cdfg.graph import Cdfg, Node
from repro.errors import SchedulingError
from repro.modules.allocation import ResourceVector
from repro.scheduling.constraints import AllocationWheel


class Schedule:
    """Start steps (and ns offsets) of every scheduled node."""

    def __init__(self, graph: Cdfg, timing: TimingSpec,
                 initiation_rate: int) -> None:
        if initiation_rate < 1:
            raise SchedulingError("initiation rate must be >= 1")
        self.graph = graph
        self.timing = timing
        self.initiation_rate = initiation_rate
        self.start_step: Dict[str, int] = {}
        self.start_ns: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def place(self, name: str, step: int,
              start_ns: Optional[float] = None) -> None:
        if name in self.start_step:
            raise SchedulingError(f"{name!r} is already scheduled")
        node = self.graph.node(name)
        period = self.timing.clock_period
        if start_ns is None:
            start_ns = step * period
        if int(math.floor(start_ns / period + _EPS)) != step:
            raise SchedulingError(
                f"{name!r}: ns start {start_ns} is not inside step {step}")
        self.start_step[name] = step
        self.start_ns[name] = start_ns

    def is_scheduled(self, name: str) -> bool:
        return name in self.start_step

    def step(self, name: str) -> int:
        try:
            return self.start_step[name]
        except KeyError:
            raise SchedulingError(f"{name!r} is not scheduled") from None

    def group(self, name: str) -> int:
        return self.step(name) % self.initiation_rate

    def finish_ns(self, name: str) -> float:
        node = self.graph.node(name)
        return self.start_ns[name] + self.timing.delay_ns(node)

    def end_step(self, name: str) -> int:
        """Last control step occupied by the node."""
        node = self.graph.node(name)
        return self.step(name) + max(1, self.timing.cycles(node)) - 1

    # ------------------------------------------------------------------
    @property
    def pipe_length(self) -> int:
        """Number of control steps from the first start to the last finish.

        Negative steps (values prefetched from earlier instances, as in
        the elliptic-filter schedules of Section 4.4.2) extend the pipe
        backwards.
        """
        if not self.start_step:
            return 0
        period = self.timing.clock_period
        first = min(self.start_step.values())
        last = 0.0
        for name in self.start_step:
            last = max(last, self.finish_ns(name))
        return int(math.ceil(last / period - _EPS)) - min(first, 0)

    def ops_in_group(self, group: int) -> List[str]:
        L = self.initiation_rate
        return sorted(n for n, s in self.start_step.items()
                      if s % L == group)

    def io_schedule(self) -> Dict[str, int]:
        return {n.name: self.start_step[n.name]
                for n in self.graph.io_nodes()
                if n.name in self.start_step}

    # ------------------------------------------------------------------
    def verify(self,
               resources: Optional[ResourceVector] = None) -> List[str]:
        """Invariant check: precedence, chaining, recursion, resources.

        Returns a list of problems (empty = valid schedule).
        """
        problems: List[str] = []
        period = self.timing.clock_period
        L = self.initiation_rate

        for name in self.graph.node_names():
            if name not in self.start_step:
                node = self.graph.node(name)
                if not node.is_free():
                    problems.append(f"{name!r} is unscheduled")

        for edge in self.graph.edges():
            if edge.src not in self.start_step or \
                    edge.dst not in self.start_step:
                continue
            src = self.graph.node(edge.src)
            dst = self.graph.node(edge.dst)
            if edge.is_recursive():
                # t_src(producer) <= t_dst(consumer) + d*L - c_src
                c_src = max(1, self.timing.cycles(src))
                if self.step(edge.src) > (self.step(edge.dst)
                                          + edge.degree * L - c_src):
                    problems.append(
                        f"recursive edge {edge.src!r}->{edge.dst!r} "
                        f"(degree {edge.degree}) violates the max-time "
                        f"constraint at L={L}")
                continue
            if src.is_free() or dst.is_free():
                continue
            if self.finish_ns(edge.src) > self.start_ns[edge.dst] + _EPS:
                problems.append(
                    f"{edge.dst!r} starts at {self.start_ns[edge.dst]} ns "
                    f"before {edge.src!r} finishes at "
                    f"{self.finish_ns(edge.src)} ns")

        # Chained ops must finish within their step.
        for name, step in self.start_step.items():
            node = self.graph.node(name)
            if node.is_free():
                continue
            cycles = max(1, self.timing.cycles(node))
            finish = self.finish_ns(name)
            if finish > (step + cycles) * period + _EPS:
                problems.append(
                    f"{name!r} overruns its {cycles}-cycle window")
            if self.timing.must_start_at_boundary(node):
                if abs(self.start_ns[name] - step * period) > 1e-6:
                    problems.append(
                        f"{name!r} must start at a clock boundary")

        if resources is not None:
            problems.extend(self._verify_resources(resources))
        return problems

    def _verify_resources(self, resources: ResourceVector) -> List[str]:
        problems: List[str] = []
        pool = ResourcePool(resources, self.timing, self.initiation_rate)
        order = sorted(self.start_step.items(), key=lambda kv: kv[1])
        for name, step in order:
            node = self.graph.node(name)
            if not node.is_functional():
                continue
            if not pool.try_place(node, step):
                problems.append(
                    f"{name!r} exceeds the functional units of partition "
                    f"{node.partition} ({node.op_type}) in group "
                    f"{step % self.initiation_rate}")
        return problems


class ResourcePool:
    """Functional-unit occupancy per (partition, op type).

    Single-cycle (or pipelined) units are counted per control-step
    group; non-pipelined multi-cycle units each carry an
    :class:`AllocationWheel` (Section 7.4) and an operation needs a unit
    whose wheel has the required contiguous free cells.
    """

    def __init__(self, resources: ResourceVector, timing: TimingSpec,
                 initiation_rate: int) -> None:
        self.resources = dict(resources)
        self.timing = timing
        self.L = initiation_rate
        self._counts: Dict[Tuple[int, str, int], int] = {}
        self._wheels: Dict[Tuple[int, str], List[AllocationWheel]] = {}

    def _units(self, partition: int, op_type: str) -> int:
        return self.resources.get((partition, op_type), 0)

    def _is_multicycle(self, node: Node) -> bool:
        return (self.timing.cycles(node) > 1
                and not _pipelined(self.timing, node))

    def can_place(self, node: Node, step: int) -> bool:
        return self._place(node, step, commit=False)

    def try_place(self, node: Node, step: int) -> bool:
        return self._place(node, step, commit=True)

    def _place(self, node: Node, step: int, commit: bool) -> bool:
        units = self._units(node.partition, node.op_type)
        if units <= 0:
            return False
        cycles = max(1, self.timing.cycles(node))
        if self._is_multicycle(node):
            key = (node.partition, node.op_type)
            wheels = self._wheels.setdefault(
                key, [AllocationWheel(self.L) for _ in range(units)])
            for wheel in wheels:
                if wheel.fits(step, cycles):
                    if commit:
                        wheel.occupy(step, cycles)
                    return True
            return False
        group = step % self.L
        key3 = (node.partition, node.op_type, group)
        if self._counts.get(key3, 0) >= units:
            return False
        if commit:
            self._counts[key3] = self._counts.get(key3, 0) + 1
        return True

    def capacity_after_place(self, node: Node, step: int) -> Optional[int]:
        """Wheel capacity left if ``node`` were placed at ``step``.

        Returns ``None`` when the operation does not fit any unit's
        wheel at that step.  Used by the Section 7.4 safety check
        without mutating the pool.
        """
        units = self._units(node.partition, node.op_type)
        if units <= 0:
            return None
        cycles = max(1, self.timing.cycles(node))
        key = (node.partition, node.op_type)
        wheels = self._wheels.setdefault(
            key, [AllocationWheel(self.L) for _ in range(units)])
        for wheel in wheels:
            if wheel.fits(step, cycles):
                wheel.occupy(step, cycles)
                capacity = sum(w.capacity(cycles) for w in wheels)
                wheel.release(step, cycles)
                return capacity
        return None

    def remaining_capacity(self, partition: int, op_type: str,
                           cycles: int) -> int:
        """How many more ``cycles``-cycle ops of this type still fit."""
        units = self._units(partition, op_type)
        if units <= 0:
            return 0
        if cycles > 1:
            wheels = self._wheels.get(
                (partition, op_type),
                [AllocationWheel(self.L) for _ in range(units)])
            return sum(w.capacity(cycles) for w in wheels)
        total = units * self.L
        used = sum(count for (p, t, _g), count in self._counts.items()
                   if p == partition and t == op_type)
        return total - used


def measured_resources(schedule: Schedule) -> ResourceVector:
    """Functional units a schedule actually needs, per partition/type.

    Single-cycle (and pipelined) units: the maximum concurrency over
    control-step groups.  Non-pipelined multi-cycle units: first-fit
    packing of the allocation wheels (Section 7.4), reporting the number
    of wheels opened.
    """
    graph = schedule.graph
    timing = schedule.timing
    L = schedule.initiation_rate
    single: Dict[Tuple[int, str, int], int] = {}
    wheels: Dict[Tuple[int, str], List[AllocationWheel]] = {}
    usage: ResourceVector = {}

    order = sorted((n for n in graph.functional_nodes()
                    if schedule.is_scheduled(n.name)),
                   key=lambda n: (schedule.step(n.name), n.name))
    for node in order:
        step = schedule.step(node.name)
        cycles = max(1, timing.cycles(node))
        key = (node.partition, node.op_type)
        if cycles > 1 and not _pipelined(timing, node):
            bank = wheels.setdefault(key, [])
            for wheel in bank:
                if wheel.fits(step, cycles):
                    wheel.occupy(step, cycles)
                    break
            else:
                wheel = AllocationWheel(L)
                wheel.occupy(step, cycles)
                bank.append(wheel)
            usage[key] = len(bank)
        else:
            group_key = (node.partition, node.op_type, step % L)
            single[group_key] = single.get(group_key, 0) + 1
            usage[key] = max(usage.get(key, 0), single[group_key])
    return usage


def _pipelined(timing: TimingSpec, node: Node) -> bool:
    probe = getattr(timing, "is_pipelined_unit", None)
    if probe is None:
        return False
    return probe(node)
