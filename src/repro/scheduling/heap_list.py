"""Heap-driven priority list scheduling.

A variant of :class:`repro.scheduling.list_scheduler.ListScheduler`
that replaces the per-step re-sort of the ready list with a single
priority heap over *all* released operations, keyed

    ``(candidate step, deadline, -criticality, name)``

in the style of event-driven HLS list schedulers.  An operation enters
the heap the moment its last (non-recursive, non-free) predecessor is
scheduled, with its data-ready step as the candidate; a failed
placement re-enters one step later.  Because a successor's candidate
step is never below the step its producers were placed in, pops leave
the heap in nondecreasing step order — which is exactly the contract
the stateful :class:`IoHooks` (pin checker, bus allocator) rely on for
their commits.

Placement feasibility (chaining windows, recursion deadlines, I/O
hooks, allocation-wheel safety) is inherited unchanged from the base
class; only the *order* in which candidates are tried differs.  The
heap never rescans unready work, so steps with nothing eligible cost
nothing — on wide designs the heap backend visits far fewer
(operation, step) pairs than the per-step rescan.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Set, Tuple

from repro.cdfg.analysis import _EPS
from repro.errors import SchedulingError
from repro.scheduling.base import ResourcePool, Schedule
from repro.scheduling.list_scheduler import ListScheduler


class HeapListScheduler(ListScheduler):
    """One-shot scheduler; construct, then call :meth:`run`."""

    # ------------------------------------------------------------------
    def _effective_preds(self, name: str) -> Set[str]:
        """Non-free predecessors reached through free nodes.

        Free nodes (constants, split/merge) are never scheduled; a
        node is released when every *effective* predecessor — the
        non-free frontier behind any free chain — is scheduled.
        """
        out: Set[str] = set()
        for edge in self.graph.in_edges(name):
            if edge.is_recursive():
                continue
            src = self.graph.node(edge.src)
            if src.is_free():
                out |= self._effective_preds(edge.src)
            else:
                out.add(edge.src)
        return out

    def _candidate_step(self, name: str, schedule: Schedule) -> int:
        """Earliest step worth trying: data-ready step, floor-aligned,
        clamped by any caller-imposed ``min_steps``."""
        period = self.timing.clock_period
        ready = self._data_ready_ns(name, schedule)
        step = int(math.floor(ready / period + _EPS))
        return max(step, self.min_steps.get(name, 0))

    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        graph = self.graph
        schedule = Schedule(graph, self.timing, self.L)
        pool = ResourcePool(self.resources, self.timing, self.L)

        remaining_by_type: Dict[Tuple[int, str], int] = {}
        for node in graph.functional_nodes():
            key = (node.partition, node.op_type)
            remaining_by_type[key] = remaining_by_type.get(key, 0) + 1

        pending: Set[str] = {n.name for n in graph.nodes()
                             if not n.is_free()}
        preds: Dict[str, Set[str]] = {
            name: self._effective_preds(name) for name in pending}
        succs: Dict[str, List[str]] = {name: [] for name in pending}
        for name in pending:
            for pred in preds[name]:
                succs.setdefault(pred, []).append(name)

        heap: List[Tuple[int, float, float, str]] = []
        for name in sorted(pending):
            if not preds[name]:
                heapq.heappush(heap, (self._candidate_step(
                    name, schedule), self._deadline[name],
                    -self._priority[name], name))

        total_ops = len(pending)
        current_step = 0
        while heap:
            step, deadline, neg_priority, name = heapq.heappop(heap)
            if step > self.max_steps:
                raise SchedulingError(
                    f"could not schedule within {self.max_steps} "
                    f"steps; {len(pending)} operations left "
                    f"(e.g. {sorted(pending)[:4]})")
            # Crossing into a later step finalizes every earlier one:
            # account the budget and fail fast on missed recursion
            # deadlines, exactly as the per-step scheduler does.
            while current_step < step:
                self._check_recursive_deadlines(pending, schedule,
                                                current_step)
                current_step += 1
                if self.budget is not None:
                    self.budget.note_incumbent(
                        solver="list_scheduler", step=current_step,
                        scheduled=total_ops - len(pending),
                        total=total_ops)
                    self.budget.tick("list_scheduler")
            node = graph.node(name)
            if self._try_place(node, step, schedule, pool,
                               remaining_by_type):
                pending.discard(name)
                for succ in succs.get(name, ()):
                    preds[succ].discard(name)
                    if not preds[succ] and succ in pending:
                        heapq.heappush(heap, (
                            max(self._candidate_step(succ, schedule),
                                current_step),
                            self._deadline[succ],
                            -self._priority[succ], succ))
            else:
                heapq.heappush(heap, (step + 1, deadline,
                                      neg_priority, name))
        self._check_recursive_deadlines(pending, schedule, current_step)
        if pending:
            raise SchedulingError(
                f"heap list scheduler left {len(pending)} operations "
                f"unreleased (dependency cycle through "
                f"{sorted(pending)[:4]})")
        return schedule
