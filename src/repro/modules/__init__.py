"""Hardware module library: functional units with delay/cost/cycles.

Section 2.2 assumes module selection happened before scheduling: for
every operation type there is exactly one module per partition that can
execute it.  The library binds ``op_type`` strings to modules, possibly
per partition, and derives the :class:`~repro.cdfg.analysis.TimingSpec`
used by the analyses and schedulers.
"""

from repro.modules.library import (
    HardwareModule,
    ModuleSet,
    DesignTiming,
    IO_DELAY_DEFAULT_NS,
    ar_filter_timing,
    elliptic_filter_timing,
)
from repro.modules.allocation import (
    min_units_single_cycle,
    min_units_multi_cycle,
    min_module_counts,
    format_resource_vector,
    ResourceVector,
)

__all__ = [
    "HardwareModule",
    "ModuleSet",
    "DesignTiming",
    "IO_DELAY_DEFAULT_NS",
    "ar_filter_timing",
    "elliptic_filter_timing",
    "min_units_single_cycle",
    "min_units_multi_cycle",
    "min_module_counts",
    "format_resource_vector",
    "ResourceVector",
]
