"""Hardware modules and per-partition module sets.

The AR-filter experiments (Section 3.4) use a 250 ns stage with 30 ns
adders, 210 ns multipliers and 10 ns I/O transfers, with chaining
allowed; the elliptic-filter experiments (Section 4.4.2) use 1-cycle
adders/I/O and 2-cycle non-pipelined multipliers with no chaining.  Both
timing styles are expressible here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.cdfg.graph import Node
from repro.cdfg.ops import OpKind
from repro.errors import ModuleLibraryError

#: Estimated I/O operation delay (output driver + interchip wire) when a
#: design does not override it (Section 2.2.1 assumes one estimate for
#: all I/O operations because the real delays are unknown a priori).
IO_DELAY_DEFAULT_NS = 10.0


@dataclass(frozen=True)
class HardwareModule:
    """One functional unit type.

    ``delay_ns`` is the combinational propagation delay; ``cycles`` the
    number of control steps the unit is busy (``None`` derives it from
    the delay and the clock period).  ``pipelined`` marks internally
    pipelined multi-cycle units (a new operation may start every cycle);
    the dissertation's multipliers are *non*-pipelined (Section 7.4).
    """

    name: str
    op_type: str
    delay_ns: float
    cost: float = 1.0
    cycles: Optional[int] = None
    pipelined: bool = False

    def cycles_at(self, clock_period: float) -> int:
        if self.cycles is not None:
            return self.cycles
        return max(1, int(math.ceil(self.delay_ns / clock_period - 1e-9)))


class ModuleSet:
    """Maps operation types to modules for one partition (or globally)."""

    def __init__(self, modules: Mapping[str, HardwareModule]) -> None:
        self._modules: Dict[str, HardwareModule] = dict(modules)
        for op_type, module in self._modules.items():
            if module.op_type != op_type:
                raise ModuleLibraryError(
                    f"module {module.name!r} registered under {op_type!r} "
                    f"but implements {module.op_type!r}")

    @classmethod
    def of(cls, *modules: HardwareModule) -> "ModuleSet":
        return cls({m.op_type: m for m in modules})

    def module(self, op_type: str) -> HardwareModule:
        try:
            return self._modules[op_type]
        except KeyError:
            raise ModuleLibraryError(
                f"no module implements operation type {op_type!r}") from None

    def __contains__(self, op_type: str) -> bool:
        return op_type in self._modules

    def op_types(self):
        return sorted(self._modules)


class DesignTiming:
    """TimingSpec implementation backed by module sets.

    ``module_sets`` maps a partition index to its :class:`ModuleSet`;
    the ``default`` set covers partitions without an entry.  I/O
    operations get ``io_delay_ns`` and always start at a clock boundary
    and complete within their cycle (Section 2.2 I/O transfer model).
    """

    def __init__(self,
                 clock_period: float,
                 default: ModuleSet,
                 module_sets: Optional[Mapping[int, ModuleSet]] = None,
                 io_delay_ns: float = IO_DELAY_DEFAULT_NS,
                 chaining: bool = True,
                 io_step_multiple: int = 1) -> None:
        """``io_step_multiple`` models the two-minor-clock scheme of
        Section 2.2: when the I/O transfer clock is slower than the
        data clock, transfers may only start at control steps that are
        multiples of this factor (both clocks derive from the global
        clock, and the initiation interval must stay a multiple of it).
        """
        if clock_period <= 0:
            raise ModuleLibraryError("clock period must be positive")
        if io_delay_ns > clock_period:
            raise ModuleLibraryError(
                "I/O transfers must complete within one cycle "
                "(Section 2.2); io_delay_ns exceeds the clock period")
        if io_step_multiple < 1:
            raise ModuleLibraryError("io_step_multiple must be >= 1")
        self.clock_period = float(clock_period)
        self._default = default
        self._sets: Dict[int, ModuleSet] = dict(module_sets or {})
        self.io_delay_ns = float(io_delay_ns)
        self._chaining = bool(chaining)
        self.io_step_multiple = int(io_step_multiple)

    def io_step_allowed(self, step: int) -> bool:
        """Whether an I/O transfer may start at this control step."""
        return step % self.io_step_multiple == 0

    # -- TimingSpec ----------------------------------------------------
    def delay_ns(self, node: Node) -> float:
        if node.is_free():
            return 0.0
        if node.kind in (OpKind.IO, OpKind.INPUT, OpKind.OUTPUT):
            return self.io_delay_ns
        return self._module_for(node).delay_ns

    def cycles(self, node: Node) -> int:
        if node.is_free():
            return 0
        if node.kind in (OpKind.IO, OpKind.INPUT, OpKind.OUTPUT):
            return 1
        return self._module_for(node).cycles_at(self.clock_period)

    def must_start_at_boundary(self, node: Node) -> bool:
        if node.is_free():
            return False
        if node.kind in (OpKind.IO, OpKind.INPUT, OpKind.OUTPUT):
            # I/O transfers activate at the beginning of a clock cycle
            # (Section 2.2).
            return True
        return self.cycles(node) > 1

    def chaining_allowed(self) -> bool:
        return self._chaining

    # -- extras used by schedulers --------------------------------------
    def module_set(self, partition: Optional[int]) -> ModuleSet:
        if partition is not None and partition in self._sets:
            return self._sets[partition]
        return self._default

    def _module_for(self, node: Node) -> HardwareModule:
        return self.module_set(node.partition).module(node.op_type)

    def is_pipelined_unit(self, node: Node) -> bool:
        if node.kind is not OpKind.FUNCTIONAL:
            return True
        return self._module_for(node).pipelined


def ar_filter_timing(chaining: bool = True) -> DesignTiming:
    """The Section 3.4 timing: 250 ns stage, 30 ns add, 210 ns mul."""
    default = ModuleSet.of(
        HardwareModule("adder", "add", delay_ns=30.0),
        HardwareModule("multiplier", "mul", delay_ns=210.0),
        HardwareModule("subtractor", "sub", delay_ns=30.0),
    )
    return DesignTiming(clock_period=250.0, default=default,
                        io_delay_ns=10.0, chaining=chaining)


def elliptic_filter_timing() -> DesignTiming:
    """Section 4.4.2 timing: 1-cycle adds/I/O, 2-cycle non-pipelined mul."""
    default = ModuleSet.of(
        HardwareModule("adder", "add", delay_ns=1.0, cycles=1),
        HardwareModule("multiplier", "mul", delay_ns=2.0, cycles=2,
                       pipelined=False),
    )
    return DesignTiming(clock_period=1.0, default=default,
                        io_delay_ns=1.0, chaining=False)
