"""Functional-unit lower bounds and resource vectors.

For pipelined designs with initiation rate ``L``, operations in the same
control-step *group* overlap in time and cannot share a unit, so a unit
serves at most ``L`` single-cycle operations.  For non-pipelined
``m``-cycle units the dissertation tightens the classical bound to
Equation 7.5: ``o_i >= ceil(n_i / floor(L / m_i))`` (undefined when
``L < m_i`` — no pipelined design exists with an initiation rate below
the longest operation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.cdfg.graph import Cdfg
from repro.errors import ModuleLibraryError, SchedulingError
from repro.modules.library import DesignTiming


def min_units_single_cycle(n_ops: int, initiation_rate: int) -> int:
    """Classical bound: each unit serves one op per control-step group."""
    if initiation_rate < 1:
        raise SchedulingError("initiation rate must be >= 1")
    if n_ops < 0:
        raise SchedulingError("operation count must be >= 0")
    return math.ceil(n_ops / initiation_rate)


def min_units_multi_cycle(n_ops: int, initiation_rate: int,
                          cycles: int, pipelined: bool = False) -> int:
    """Equation 7.5 bound for non-pipelined multi-cycle units.

    A non-pipelined ``m``-cycle unit fits only ``floor(L / m)``
    operations into its length-``L`` allocation wheel; a pipelined unit
    behaves like a single-cycle one for this bound.
    """
    if cycles < 1:
        raise ModuleLibraryError("cycles must be >= 1")
    if pipelined or cycles == 1:
        return min_units_single_cycle(n_ops, initiation_rate)
    if initiation_rate < cycles:
        raise SchedulingError(
            f"no pipelined design with initiation rate {initiation_rate} "
            f"exists: an operation takes {cycles} cycles (Section 7.4)")
    slots_per_unit = initiation_rate // cycles
    return math.ceil(n_ops / slots_per_unit)


#: (partition, op_type) -> number of functional units.
ResourceVector = Dict[Tuple[int, str], int]


def min_module_counts(graph: Cdfg, timing: DesignTiming,
                      initiation_rate: int) -> ResourceVector:
    """Per-partition lower bounds on functional-unit counts."""
    ops: Dict[Tuple[int, str], int] = {}
    for node in graph.functional_nodes():
        key = (node.partition, node.op_type)
        ops[key] = ops.get(key, 0) + 1
    bounds: ResourceVector = {}
    for (partition, op_type), count in sorted(ops.items()):
        module = timing.module_set(partition).module(op_type)
        cycles = module.cycles_at(timing.clock_period)
        bounds[(partition, op_type)] = min_units_multi_cycle(
            count, initiation_rate, cycles, module.pipelined)
    return bounds


def format_resource_vector(resources: Mapping[Tuple[int, str], int],
                           symbols: Optional[Mapping[str, str]] = None
                           ) -> str:
    """Compact human-readable form like ``P1:(2+,2*) P2:(1+,1*)``.

    ``symbols`` maps op types to short glyphs; defaults to the
    dissertation's ``+`` for adds and ``*`` for multiplies.
    """
    glyphs = {"add": "+", "mul": "*", "sub": "-"}
    if symbols:
        glyphs.update(symbols)
    per_part: Dict[int, Dict[str, int]] = {}
    for (partition, op_type), count in resources.items():
        per_part.setdefault(partition, {})[op_type] = count
    chunks = []
    for partition in sorted(per_part):
        inner = ",".join(
            f"{count}{glyphs.get(op, op)}"
            for op, count in sorted(per_part[partition].items()))
        chunks.append(f"P{partition}:({inner})")
    return " ".join(chunks)
