#!/usr/bin/env python
"""Validate a ``synthesize --json`` payload against the checked-in schema.

Stdlib-only (no ``jsonschema`` dependency): implements the small JSON
Schema subset the schema file actually uses — ``type``, ``required``,
``properties``, ``patternProperties``, ``additionalProperties``,
``items``, ``enum``, ``minimum``.  CI runs this over every built-in
design's output so the machine-readable contract cannot drift silently.

Usage::

    python -m repro synthesize ar-general --flow auto --json > out.json
    python tools/validate_synth_json.py out.json
    ... | python tools/validate_synth_json.py -          # from stdin
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

DEFAULT_SCHEMA = (Path(__file__).resolve().parent.parent
                  / "docs" / "schema" / "synthesize_result.schema.json")

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, name: str) -> bool:
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    return isinstance(value, _TYPES[name])


def validate(value, schema: dict, path: str = "$") -> list:
    """Return a list of problem strings (empty = conforming)."""
    problems = []
    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(value, n) for n in names):
            return [f"{path}: expected {declared}, "
                    f"got {type(value).__name__}"]
    if "enum" in schema and value not in schema["enum"]:
        problems.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        problems.append(
            f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                problems.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        patterns = schema.get("patternProperties", {})
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            sub = f"{path}.{key}"
            matched = False
            if key in props:
                matched = True
                problems.extend(validate(item, props[key], sub))
            for pattern, pschema in patterns.items():
                if re.search(pattern, key):
                    matched = True
                    problems.extend(validate(item, pschema, sub))
            if not matched:
                if extra is False:
                    problems.append(f"{path}: unexpected key {key!r}")
                elif isinstance(extra, dict):
                    problems.extend(validate(item, extra, sub))

    if isinstance(value, list) and isinstance(schema.get("items"), dict):
        for index, item in enumerate(value):
            problems.extend(
                validate(item, schema["items"], f"{path}[{index}]"))
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    source = argv[0]
    schema_path = Path(argv[1]) if len(argv) == 2 else DEFAULT_SCHEMA
    schema = json.loads(schema_path.read_text())
    raw = sys.stdin.read() if source == "-" else Path(source).read_text()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        print(f"not JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate(payload, schema)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    print("schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
